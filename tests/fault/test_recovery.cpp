/** @file Recovery semantics across the storage components and the
 *  system layer: ECC retries add their latency exactly once, a sharded
 *  store reroutes reads around a down shard, the feature cache never
 *  installs a line from a failed read, async and blocking paths agree
 *  tick for tick under faults, bad fault/retry configs die in
 *  SystemConfig::validate, and the fault-space artifact is a pure
 *  function of the scenario. Ctest label `fault`. */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/experiment.hh"
#include "core/scenario.hh"
#include "core/serving.hh"
#include "core/system.hh"
#include "flash/flash_array.hh"
#include "host/feature_cache.hh"
#include "host/io_path.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "ssd/sharded_ssd.hh"

using namespace smartsage;
using namespace smartsage::core;
namespace sim = smartsage::sim;

namespace
{

const Workload &
smallWorkload()
{
    static Workload wl = Workload::make(graph::DatasetId::Amazon, false);
    return wl;
}

SystemConfig
faultyConfig(const std::string &backend)
{
    SystemConfig sc;
    sc.backend = backend;
    sc.fanouts = {6, 3};
    sc.pipeline.batch_size = 64;
    return sc;
}

} // namespace

TEST(EccRecovery, RetryLatencyIsAddedExactlyOnce)
{
    flash::FlashConfig clean_cfg;
    flash::FlashConfig ecc_cfg = clean_cfg;
    ecc_cfg.fault.ecc_rate = 1.0; // every sense draws a retry
    ecc_cfg.fault.ecc_retry = sim::us(60);

    flash::FlashArray clean(clean_cfg), ecc(ecc_cfg);
    sim::Tick t_clean = clean.readPage({0, 0, 0}, 0);
    sim::Tick t_ecc = ecc.readPage({0, 0, 0}, 0);
    // One extra die occupancy of exactly ecc_retry; the ONFI transfer
    // is unchanged.
    EXPECT_EQ(t_ecc, t_clean + ecc_cfg.fault.ecc_retry);
    EXPECT_EQ(ecc.eccRetries(), 1u);
    EXPECT_EQ(clean.eccRetries(), 0u);

    // reset() rewinds the draw stream: the rerun is identical.
    ecc.reset();
    EXPECT_EQ(ecc.readPage({0, 0, 0}, 0), t_ecc);
}

TEST(DegradedSharded, ReadsRerouteAroundADownShard)
{
    host::HostConfig config;
    config.scratchpad_bytes = sim::KiB(256);
    config.fault.shard_outage_rate = 0.5;
    ssd::SsdConfig ssd_config;
    ssd::ShardedSsdParams params;

    // The schedule is a pure function of the plan, so the test can
    // precompute which ticks put shard 0 down while another is up.
    sim::OutageSchedule sched(config.fault, params.shards);
    auto submitTick = [&](sim::Tick arrival) {
        return arrival + config.direct_io_submit;
    };
    sim::Tick degraded_at = 0, healthy_at = 0;
    bool found_degraded = false, found_healthy = false;
    for (sim::Tick t = 0; t < 4 * config.fault.outage_period;
         t += sim::us(50)) {
        bool zero_down = sched.down(0, submitTick(t));
        bool any_up = false;
        for (unsigned s = 1; s < params.shards; ++s)
            any_up = any_up || !sched.down(s, submitTick(t));
        if (!found_degraded && zero_down && any_up) {
            degraded_at = t;
            found_degraded = true;
        }
        if (!found_healthy && !zero_down) {
            healthy_at = t;
            found_healthy = true;
        }
    }
    ASSERT_TRUE(found_degraded);
    ASSERT_TRUE(found_healthy);

    // Address 0 lives on shard 0. A read while shard 0 is down
    // completes (rerouted) but pays the degraded penalty relative to
    // the same cold read served by the home shard.
    ssd::ShardedEdgeStore store(config, ssd_config, params);
    sim::Tick degraded_done = store.read(degraded_at, 0, 64);
    EXPECT_EQ(store.degradedReads(), 1u);
    EXPECT_GT(degraded_done, degraded_at);

    ssd::ShardedEdgeStore fresh(config, ssd_config, params);
    sim::Tick healthy_done = fresh.read(healthy_at, 0, 64);
    EXPECT_EQ(fresh.degradedReads(), 0u);
    EXPECT_GT(degraded_done - degraded_at, healthy_done - healthy_at);

    // A store with no outage schedule never degrades.
    host::HostConfig inert = config;
    inert.fault = sim::FaultPlan{};
    ssd::ShardedEdgeStore plain(inert, ssd_config, params);
    EXPECT_FALSE(plain.outagesEnabled());
    EXPECT_EQ(plain.read(degraded_at, 0, 64) - degraded_at,
              healthy_done - healthy_at);
}

TEST(CacheRecovery, FailedFillsNeverInstallLines)
{
    // Every host read fails and the budget is one attempt: no gather
    // ever returns data, so the cache must never serve a hit — a line
    // filled from a failed read would be garbage.
    SystemConfig sc = faultyConfig("ssd-mmap");
    sc.backend_knobs["cache.policy"] = 0; // LRU
    sc.backend_knobs["cache.capacity_fraction"] = 0.5;
    sc.fault.read_error_rate = 1.0;
    sc.retry.max_attempts = 1;
    GnnSystem system(sc, smallWorkload());

    ServingConfig serving;
    serving.arrival_qps = 20000;
    serving.num_requests = 128;
    ServingResult r = runServingLoad(system, serving);
    EXPECT_EQ(r.shed_error, r.requests);
    EXPECT_EQ(r.completed_ok, 0u);
    EXPECT_EQ(r.goodput_qps, 0.0);
    EXPECT_EQ(r.shedFraction(), 1.0);

    const host::FeatureCacheStore *cache = system.featureCache();
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->stats().hits, 0u);
    EXPECT_GT(cache->stats().failed_fills, 0u);
}

TEST(AsyncBlocking, AgreeTickForTickUnderFaults)
{
    // Same fault plan, same retry policy (with jitter), two identical
    // stores: one driven through the blocking adapters, one through
    // single-in-flight async submissions. Injector draws and jitter
    // forks depend only on submission order, so the completion ticks
    // must agree exactly even while requests fail, slow down, and
    // retry.
    host::HostConfig config;
    config.fault.read_error_rate = 0.3;
    config.fault.slow_rate = 0.2;
    config.retry.max_attempts = 10;
    host::DramEdgeStore blocking(config), async(config);

    sim::Rng rng(0x5eed);
    sim::EventQueue eq;
    sim::Tick t_blocking = 0, t_async = 0;
    for (int i = 0; i < 64; ++i) {
        std::uint64_t addr = rng.nextBounded(sim::MiB(4));
        t_blocking = blocking.read(t_blocking, addr, 64);

        sim::Tick finish = 0;
        eq.schedule(t_async, [&] {
            async.submitRead(eq, addr, 64,
                             [&](sim::Tick f, sim::IoStatus s) {
                                 EXPECT_EQ(s, sim::IoStatus::Ok);
                                 finish = f;
                             });
        });
        eq.run();
        t_async = finish;
        ASSERT_EQ(t_blocking, t_async) << "read " << i;
    }
    EXPECT_GT(blocking.ioChannel().retries(), 0u);
    EXPECT_EQ(blocking.ioChannel().retries(),
              async.ioChannel().retries());
}

TEST(SystemKnobs, FaultAndRetryNamespacesDispatch)
{
    SystemConfig config;
    EXPECT_TRUE(applyKnob(config, {"fault.read_error_rate", 0.25}));
    EXPECT_TRUE(applyKnob(config, {"fault.seed", 99}));
    EXPECT_TRUE(applyKnob(config, {"retry.max_attempts", 4}));
    EXPECT_TRUE(applyKnob(config, {"retry.timeout_us", 100000}));
    EXPECT_EQ(config.fault.read_error_rate, 0.25);
    EXPECT_EQ(config.fault.seed, 99u);
    EXPECT_EQ(config.retry.max_attempts, 4u);
    EXPECT_EQ(config.retry.timeout, sim::us(100000));
    EXPECT_FALSE(applyKnob(config, {"fault.no_such_knob", 1.0}));
    EXPECT_FALSE(applyKnob(config, {"retry.no_such_knob", 1.0}));
}

TEST(SystemValidate, RejectsBadFaultAndRetryConfigs)
{
    {
        SystemConfig sc = faultyConfig("ssd-mmap");
        sc.fault.read_error_rate = -0.5;
        EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                     "read_error_rate");
    }
    {
        SystemConfig sc = faultyConfig("ssd-mmap");
        sc.retry.max_attempts = 0;
        EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                     "max_attempts");
    }
    {
        SystemConfig sc = faultyConfig("ssd-mmap");
        sc.retry.backoff_base = sim::us(100);
        sc.retry.backoff_cap = sim::us(10);
        EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                     "backoff_cap");
    }
    {
        SystemConfig sc = faultyConfig("ssd-mmap");
        sc.retry.timeout = sim::minServiceTick - 1;
        EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                     "minimum service tick");
    }
}

TEST(FaultStats, RowsAppearOnlyWhenFaultsCanFire)
{
    // Fault-free systems keep their pre-fault stats document (the
    // byte-identity guarantee); enabling any fault source adds the
    // recovery rows.
    GnnSystem plain(faultyConfig("ssd-mmap"), smallWorkload());
    std::ostringstream clean;
    plain.dumpStats(clean);
    EXPECT_EQ(clean.str().find("host.io.retries"), std::string::npos);

    SystemConfig sc = faultyConfig("ssd-mmap");
    sc.fault.read_error_rate = 0.1;
    GnnSystem faulty(sc, smallWorkload());
    std::ostringstream dirty;
    faulty.dumpStats(dirty);
    EXPECT_NE(dirty.str().find("host.io.retries"), std::string::npos);
}

TEST(FaultServing, FixedSeedReproducesRetryAndShedCounts)
{
    SystemConfig sc = faultyConfig("ssd-mmap");
    sc.fault.read_error_rate = 0.2;
    sc.retry.max_attempts = 2;
    sc.retry.timeout = sim::us(100000);

    ServingConfig serving;
    serving.arrival_qps = 20000;
    serving.num_requests = 256;

    GnnSystem a(sc, smallWorkload()), b(sc, smallWorkload());
    ServingResult ra = runServingLoad(a, serving);
    ServingResult rb = runServingLoad(b, serving);
    EXPECT_GT(ra.io_retries, 0u);
    EXPECT_GT(ra.shed_error + ra.shed_timeout, 0u);
    EXPECT_EQ(ra.io_retries, rb.io_retries);
    EXPECT_EQ(ra.shed_error, rb.shed_error);
    EXPECT_EQ(ra.shed_timeout, rb.shed_timeout);
    EXPECT_EQ(ra.completed_ok, rb.completed_ok);
    EXPECT_EQ(ra.p99_us(), rb.p99_us());
}

TEST(FaultSpace, ArtifactIsWorkerCountInvariant)
{
    // The fault-space artifact must be a pure function of the
    // scenario, not of runner scheduling: identical JSON at any
    // --workers count, retry counters included.
    const Scenario *family = findScenario("fault-space");
    ASSERT_NE(family, nullptr);
    Scenario s = smokeVariant(*family);
    s.backends = {"dram", "ssd-mmap"};

    auto renderAt = [&](unsigned workers) {
        RunnerOptions options;
        options.workers = workers;
        ExperimentRunner runner(options);
        std::vector<ScenarioRun> runs{runner.run(s)};
        std::ostringstream json;
        writeDesignSpaceJson(json, runs, "fault_space");
        return json.str();
    };
    std::string one = renderAt(1);
    std::string three = renderAt(3);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, three);
    // The family actually exercises recovery: shed and retry columns
    // are present in the artifact.
    EXPECT_NE(one.find("\"shed_frac\""), std::string::npos);
    EXPECT_NE(one.find("\"io_retries\""), std::string::npos);
}
