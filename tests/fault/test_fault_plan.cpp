/** @file FaultPlan/RetryPolicy knob parsing and validation, plus the
 *  determinism contracts of FaultInjector (per-component streams,
 *  zero-rate draws consume nothing) and OutageSchedule (down windows
 *  are a pure function of plan and tick). Ctest label `fault`. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fault.hh"

using namespace smartsage::sim;

TEST(FaultKnobs, FaultPlanKeysApply)
{
    FaultPlan plan;
    EXPECT_TRUE(applyKnob(plan, "read_error_rate", 0.25));
    EXPECT_TRUE(applyKnob(plan, "slow_rate", 0.1));
    EXPECT_TRUE(applyKnob(plan, "slow_multiplier", 4.0));
    EXPECT_TRUE(applyKnob(plan, "ecc_rate", 0.5));
    EXPECT_TRUE(applyKnob(plan, "ecc_retry_us", 30));
    EXPECT_TRUE(applyKnob(plan, "shard_outage_rate", 0.2));
    EXPECT_TRUE(applyKnob(plan, "outage_period_ms", 10));
    EXPECT_TRUE(applyKnob(plan, "seed", 42));
    EXPECT_EQ(plan.read_error_rate, 0.25);
    EXPECT_EQ(plan.ecc_retry, us(30));
    EXPECT_EQ(plan.outage_period, ms(10));
    EXPECT_EQ(plan.seed, 42u);
    EXPECT_FALSE(applyKnob(plan, "no_such_knob", 1.0));
}

TEST(FaultKnobs, RetryPolicyKeysApply)
{
    RetryPolicy policy;
    EXPECT_TRUE(applyKnob(policy, "max_attempts", 4));
    EXPECT_TRUE(applyKnob(policy, "backoff_base_us", 50));
    EXPECT_TRUE(applyKnob(policy, "backoff_cap_us", 5000));
    EXPECT_TRUE(applyKnob(policy, "jitter", 0.0));
    EXPECT_TRUE(applyKnob(policy, "timeout_us", 100000));
    EXPECT_EQ(policy.max_attempts, 4u);
    EXPECT_EQ(policy.backoff_base, us(50));
    EXPECT_EQ(policy.timeout, us(100000));
    EXPECT_FALSE(applyKnob(policy, "no_such_knob", 1.0));
}

TEST(FaultValidate, RejectsImpossiblePlans)
{
    FaultPlan negative;
    negative.read_error_rate = -0.1;
    EXPECT_DEATH(validate(negative), "read_error_rate");

    FaultPlan speedup;
    speedup.slow_multiplier = 0.5;
    EXPECT_DEATH(validate(speedup), "slow_multiplier");

    FaultPlan permanent;
    permanent.shard_outage_rate = 1.0;
    EXPECT_DEATH(validate(permanent), "smaller array");

    FaultPlan no_period;
    no_period.shard_outage_rate = 0.5;
    no_period.outage_period = 0;
    EXPECT_DEATH(validate(no_period), "outage_period");

    FaultPlan fine;
    fine.read_error_rate = 1.0; // rate 1 is extreme but legal
    validate(fine);
}

TEST(FaultValidate, RejectsImpossibleRetryPolicies)
{
    RetryPolicy zero;
    zero.max_attempts = 0;
    EXPECT_DEATH(validate(zero), "max_attempts");

    RetryPolicy inverted;
    inverted.backoff_base = us(100);
    inverted.backoff_cap = us(10);
    EXPECT_DEATH(validate(inverted), "backoff_cap");

    RetryPolicy hair_trigger;
    hair_trigger.timeout = minServiceTick - 1;
    EXPECT_DEATH(validate(hair_trigger), "minimum service tick");

    RetryPolicy fine;
    fine.max_attempts = 1; // no retries is a legal policy
    fine.timeout = minServiceTick;
    validate(fine);
}

TEST(FaultInjector, DrawStreamIsAFunctionOfSeedAndComponent)
{
    FaultPlan plan;
    plan.read_error_rate = 0.3;

    FaultInjector a(plan, "host-io");
    FaultInjector b(plan, "host-io");
    FaultInjector other(plan, "flash");
    std::vector<bool> sa, sb, so;
    for (int i = 0; i < 256; ++i) {
        sa.push_back(a.drawReadError());
        sb.push_back(b.drawReadError());
        so.push_back(other.drawReadError());
    }
    EXPECT_EQ(sa, sb);
    EXPECT_NE(sa, so); // component name forks a distinct stream

    // reset() replays the stream from the start.
    a.reset();
    std::vector<bool> replay;
    for (int i = 0; i < 256; ++i)
        replay.push_back(a.drawReadError());
    EXPECT_EQ(replay, sa);
}

TEST(FaultInjector, ZeroRateDrawsConsumeNoStream)
{
    // Interleaving disabled fault draws must not perturb the enabled
    // one — the exact property that keeps fault-free runs
    // draw-for-draw identical to a build that never injects.
    FaultPlan plan;
    plan.read_error_rate = 0.5; // slow_rate and ecc_rate stay 0

    FaultInjector plain(plan, "host-io");
    FaultInjector interleaved(plan, "host-io");
    std::vector<bool> expected, got;
    for (int i = 0; i < 128; ++i) {
        expected.push_back(plain.drawReadError());
        EXPECT_EQ(interleaved.slowed(0, 100), 100u); // no draw
        EXPECT_FALSE(interleaved.drawEccRetry());    // no draw
        got.push_back(interleaved.drawReadError());
    }
    EXPECT_EQ(got, expected);
}

TEST(FaultInjector, SlowedStretchesTheServiceInterval)
{
    FaultPlan plan;
    plan.slow_rate = 1.0;
    plan.slow_multiplier = 8.0;
    FaultInjector inj(plan, "host-io");
    // Every attempt is slow at rate 1: the interval stretches by the
    // multiplier, anchored at the start tick.
    EXPECT_EQ(inj.slowed(100, 200), 100 + 8 * 100);
}

TEST(OutageSchedule, DownFractionMatchesThePlanExactly)
{
    FaultPlan plan;
    plan.shard_outage_rate = 0.25;
    plan.outage_period = 1000;
    OutageSchedule sched(plan, 4);
    for (unsigned shard = 0; shard < 4; ++shard) {
        unsigned down = 0;
        for (Tick t = 0; t < 1000; ++t)
            down += sched.down(shard, t) ? 1 : 0;
        EXPECT_EQ(down, 250u) << "shard " << shard;
    }
}

TEST(OutageSchedule, PureFunctionOfPlanShardAndTick)
{
    FaultPlan plan;
    plan.shard_outage_rate = 0.5;
    plan.outage_period = 997; // prime, so phases rarely align
    OutageSchedule a(plan, 3);
    OutageSchedule b(plan, 3);
    std::vector<std::vector<bool>> windows(3);
    for (unsigned shard = 0; shard < 3; ++shard) {
        for (Tick t = 0; t < 2000; t += 13) {
            EXPECT_EQ(a.down(shard, t), b.down(shard, t));
            // Periodic: the same window repeats every period.
            EXPECT_EQ(a.down(shard, t), a.down(shard, t + 997));
        }
        for (Tick t = 0; t < 997; ++t)
            windows[shard].push_back(a.down(shard, t));
    }
    // Per-shard phases stagger the windows (seed-derived offsets), so
    // the shards do not all fail in lockstep.
    EXPECT_FALSE(windows[0] == windows[1] && windows[1] == windows[2]);
}
