/** @file Multi-tenant SLO serving tests (ctest label `slo`): the
 *  closed-loop/tagged serving front end (core/serving.hh +
 *  core/tenant.hh) under an oversubscribed two-tenant mix, the
 *  slo-space scenario family, and determinism of both. The operating
 *  point mirrors the slo-space grid: an interactive tenant (small
 *  fanout, 2 ms SLO, high priority) sharing a narrow host I/O channel
 *  with a batch tenant offering ~20x the request volume at 4x the
 *  request weight. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/experiment.hh"
#include "core/scenario.hh"
#include "core/serving.hh"
#include "core/system.hh"
#include "core/tenant.hh"

using namespace smartsage;
using namespace smartsage::core;

namespace
{

const Workload &
smallWorkload()
{
    static Workload wl =
        Workload::make(graph::DatasetId::Amazon, false);
    return wl;
}

/** The slo-space two-tenant overload mix: interactive vs batch. */
std::vector<TenantClass>
mixedTenants()
{
    TenantClass interactive;
    interactive.name = "interactive";
    interactive.arrival_qps = 10000;
    interactive.fanout = 4;
    interactive.slo = sim::us(2000);
    interactive.priority = 10;
    interactive.requests = 64;

    TenantClass batch;
    batch.name = "batch";
    batch.arrival_qps = 200000;
    batch.fanout = 16;
    batch.requests = 1280;
    return {interactive, batch};
}

/** Overloadable system: flash-backed mmap path, narrow host queue. */
SystemConfig
sloSystem(bool slo_aware_edf)
{
    SystemConfig sc;
    sc.backend = "ssd-mmap";
    sc.fanouts = {6, 3};
    sc.host.io_queue_depth = 8;
    if (slo_aware_edf) {
        sc.sched.policy = sim::DispatchPolicy::Deadline;
        sc.admit.slo_aware = true;
    }
    return sc;
}

ServingConfig
tenantConfig()
{
    ServingConfig cfg;
    cfg.seed = 0x510a11;
    cfg.tenants = mixedTenants();
    return cfg;
}

ServingResult
runMix(bool slo_aware_edf)
{
    GnnSystem system(sloSystem(slo_aware_edf), smallWorkload());
    return runServingLoad(system, tenantConfig());
}

} // namespace

TEST(SloServing, PerTenantAccountingCoversEveryRequest)
{
    ServingResult r = runMix(false);
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_EQ(r.tenants[0].name, "interactive");
    EXPECT_EQ(r.tenants[0].requests, 64u);
    EXPECT_EQ(r.tenants[1].name, "batch");
    EXPECT_EQ(r.tenants[1].requests, 1280u);
    EXPECT_EQ(r.requests, 1344u);

    std::uint64_t accounted = r.completed_ok + r.shed_error +
                              r.shed_timeout + r.shed_admission;
    EXPECT_EQ(accounted, r.requests);
    for (const TenantServingResult &t : r.tenants)
        EXPECT_EQ(t.completed_ok + t.shed, t.requests) << t.name;
    // The batch class has no SLO, so aggregate attainment is the
    // interactive class's attainment exactly.
    EXPECT_DOUBLE_EQ(r.sloAttainment(), r.tenants[0].sloAttainment());
}

TEST(SloServing, SloAwareDispatchSeparatesInteractiveFromBatch)
{
    // The acceptance shape: under FIFO the interactive tenant's small
    // requests drown behind the batch flood and miss their 2 ms SLO;
    // EDF dispatch plus SLO-aware admission on the same offered load
    // lifts interactive attainment to >= 90%.
    ServingResult fifo = runMix(false);
    ServingResult edf = runMix(true);

    double fifo_att = fifo.tenants[0].sloAttainment();
    double edf_att = edf.tenants[0].sloAttainment();
    EXPECT_LT(fifo_att, 0.6) << "FIFO should be markedly degraded";
    EXPECT_GE(edf_att, 0.9);
    EXPECT_GT(edf_att, fifo_att + 0.3);

    // And the win is scheduling, not starvation: the batch tenant
    // still completes the bulk of its requests under EDF.
    EXPECT_GT(edf.tenants[1].completed_ok, edf.tenants[1].requests / 2);
    // Interactive tail collapses once its deadlines steer dispatch.
    EXPECT_LT(edf.tenants[0].latency_us.percentile(99.0),
              fifo.tenants[0].latency_us.percentile(99.0));
}

TEST(SloServing, TenantRunsAreBitReproducible)
{
    ServingResult a = runMix(true);
    ServingResult b = runMix(true);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.completed_ok, b.completed_ok);
    EXPECT_EQ(a.shed_admission, b.shed_admission);
    EXPECT_DOUBLE_EQ(a.latency_us.sum(), b.latency_us.sum());
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t t = 0; t < a.tenants.size(); ++t) {
        EXPECT_EQ(a.tenants[t].slo_met, b.tenants[t].slo_met);
        EXPECT_EQ(a.tenants[t].shed, b.tenants[t].shed);
        EXPECT_DOUBLE_EQ(a.tenants[t].goodput_qps,
                         b.tenants[t].goodput_qps);
    }
}

TEST(SloServing, ClosedLoopClientsSelfThrottle)
{
    // Turning the interactive class into a closed loop of 8 clients
    // bounds its in-flight requests by the population: offered load
    // self-throttles, so completions stay high even under the flood.
    ServingConfig cfg = tenantConfig();
    cfg.tenants[0].clients = 8;
    cfg.tenants[0].think = sim::us(300);
    GnnSystem system(sloSystem(true), smallWorkload());
    ServingResult r = runServingLoad(system, cfg);
    EXPECT_EQ(r.tenants[0].requests, 64u);
    EXPECT_GT(r.tenants[0].completed_ok, 0u);
    std::uint64_t accounted = r.completed_ok + r.shed_error +
                              r.shed_timeout + r.shed_admission;
    EXPECT_EQ(accounted, r.requests);
}

TEST(SloFamily, SloSpaceCoversServableBackendsAndDisciplines)
{
    const Scenario *s = findScenario("slo-space");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, ExperimentKind::Serving);
    EXPECT_EQ(s->artifact, "slo");
    EXPECT_EQ(s->backends, servableBackendIds());
    // Grid: FIFO baseline, EDF, priority+bound, three arrival shapes,
    // closed loop — at least seven discipline/shape points.
    EXPECT_GE(s->overrides.size(), 7u);
    // Every point configures the two-tenant mix.
    for (const auto &knobs : s->overrides) {
        bool has_tenant = false;
        for (const KnobSetting &k : knobs)
            has_tenant |= k.key.rfind("tenant.", 0) == 0;
        EXPECT_TRUE(has_tenant);
    }
}

TEST(SloFamily, RunnerCellsAreWorkerCountInvariant)
{
    Scenario smoke = smokeVariant(*findScenario("slo-space"));
    // Trim to the FIFO-vs-EDF pair on the overloadable backend so the
    // invariance check stays test-sized.
    smoke.backends = {"ssd-mmap"};
    smoke.overrides.resize(2);

    RunnerOptions serial_opts;
    serial_opts.workers = 1;
    RunnerOptions parallel_opts;
    parallel_opts.workers = 3;
    ScenarioRun a = ExperimentRunner(serial_opts).run(smoke);
    ScenarioRun b = ExperimentRunner(parallel_opts).run(smoke);

    ASSERT_EQ(a.cells.size(), b.cells.size());
    ASSERT_EQ(a.cells.size(), 2u);
    bool saw_slo_metric = false;
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        ASSERT_EQ(a.cells[i].metrics.size(), b.cells[i].metrics.size());
        for (std::size_t m = 0; m < a.cells[i].metrics.size(); ++m) {
            EXPECT_EQ(a.cells[i].metrics[m].name,
                      b.cells[i].metrics[m].name);
            EXPECT_DOUBLE_EQ(a.cells[i].metrics[m].value,
                             b.cells[i].metrics[m].value)
                << a.cells[i].cell.label() << " / "
                << a.cells[i].metrics[m].name;
            saw_slo_metric |=
                a.cells[i].metrics[m].name == "slo_attainment";
        }
    }
    EXPECT_TRUE(saw_slo_metric);
}
