/** @file Unit tests for CsrGraph and GraphBuilder. */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/csr.hh"

using namespace smartsage::graph;

namespace
{

CsrGraph
triangle()
{
    GraphBuilder b(3);
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    b.addEdge(2, 0);
    return std::move(b).build();
}

} // namespace

TEST(CsrGraph, BasicShape)
{
    CsrGraph g = triangle();
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.neighbors(0)[0], 1u);
    EXPECT_EQ(g.neighbors(2)[0], 0u);
}

TEST(CsrGraph, EdgeOffsetsAreCumulative)
{
    GraphBuilder b(3);
    b.addEdge(0, 1);
    b.addEdge(0, 2);
    b.addEdge(2, 1);
    CsrGraph g = std::move(b).build();
    EXPECT_EQ(g.edgeOffset(0), 0u);
    EXPECT_EQ(g.edgeOffset(1), 2u);
    EXPECT_EQ(g.edgeOffset(2), 2u);
}

TEST(CsrGraph, DegreeStats)
{
    GraphBuilder b(4);
    b.addEdge(0, 1);
    b.addEdge(0, 2);
    b.addEdge(0, 3);
    b.addEdge(1, 0);
    CsrGraph g = std::move(b).build();
    EXPECT_DOUBLE_EQ(g.avgDegree(), 1.0);
    EXPECT_EQ(g.maxDegree(), 3u);
}

TEST(CsrGraph, IsolatedNodesHaveZeroDegree)
{
    GraphBuilder b(5);
    b.addEdge(0, 4);
    CsrGraph g = std::move(b).build();
    for (LocalNodeId u = 1; u < 4; ++u)
        EXPECT_EQ(g.degree(u), 0u);
}

TEST(CsrGraph, ByteAccounting)
{
    CsrGraph g = triangle();
    EXPECT_EQ(g.edgeListBytes(), 3 * sizeof(LocalNodeId));
    EXPECT_EQ(g.offsetBytes(), 4 * sizeof(EdgeIndex));
}

TEST(GraphBuilder, NeighborListsComeOutSorted)
{
    GraphBuilder b(4);
    b.addEdge(0, 3);
    b.addEdge(0, 1);
    b.addEdge(0, 2);
    CsrGraph g = std::move(b).build();
    auto n = g.neighbors(0);
    EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(GraphBuilder, DedupDropsDuplicates)
{
    GraphBuilder b(2);
    b.addEdge(0, 1);
    b.addEdge(0, 1);
    b.addEdge(0, 1);
    CsrGraph g = std::move(b).build(true);
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(GraphBuilder, WithoutDedupKeepsMultiEdges)
{
    GraphBuilder b(2);
    b.addEdge(0, 1);
    b.addEdge(0, 1);
    CsrGraph g = std::move(b).build(false);
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST(GraphBuilder, UndirectedAddsMirror)
{
    GraphBuilder b(3);
    b.addUndirectedEdge(0, 2);
    CsrGraph g = std::move(b).build();
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(2), 1u);
}

TEST(GraphBuilder, UndirectedSelfLoopAddedOnce)
{
    GraphBuilder b(2);
    b.addUndirectedEdge(1, 1);
    CsrGraph g = std::move(b).build();
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(GraphBuilderDeath, OutOfRangeEdgePanics)
{
    GraphBuilder b(2);
    EXPECT_DEATH(b.addEdge(0, 2), "out of range");
}

TEST(CsrGraphDeath, MalformedOffsetsPanics)
{
    std::vector<EdgeIndex> offsets = {0, 2, 1}; // decreasing
    std::vector<LocalNodeId> nbrs = {1};
    EXPECT_DEATH(CsrGraph(std::move(offsets), std::move(nbrs)),
                 "nondecreasing");
}

TEST(CsrGraphDeath, NeighborOutOfRangePanics)
{
    std::vector<EdgeIndex> offsets = {0, 1};
    std::vector<LocalNodeId> nbrs = {7};
    EXPECT_DEATH(CsrGraph(std::move(offsets), std::move(nbrs)),
                 "out of range");
}
