/** @file Tests for the R-MAT and power-law graph generators. */

#include <gtest/gtest.h>

#include "graph/degree.hh"
#include "graph/powerlaw.hh"
#include "graph/rmat.hh"

using namespace smartsage::graph;

TEST(Rmat, ProducesRequestedSize)
{
    RmatParams p;
    p.scale = 10;
    p.edge_factor = 8.0;
    CsrGraph g = generateRmat(p);
    EXPECT_EQ(g.numNodes(), 1024u);
    EXPECT_EQ(g.numEdges(), 8192u);
}

TEST(Rmat, DeterministicForSeed)
{
    RmatParams p;
    p.scale = 9;
    p.seed = 42;
    CsrGraph a = generateRmat(p);
    CsrGraph b = generateRmat(p);
    EXPECT_EQ(a.rawNeighbors(), b.rawNeighbors());
    EXPECT_EQ(a.offsets(), b.offsets());
}

TEST(Rmat, SkewedDistributionHasHubs)
{
    RmatParams p;
    p.scale = 12;
    p.edge_factor = 16.0;
    CsrGraph g = generateRmat(p);
    // R-MAT with a=0.57 concentrates edges: max degree far exceeds avg.
    EXPECT_GT(static_cast<double>(g.maxDegree()), 8.0 * g.avgDegree());
}

TEST(Rmat, UndirectedDoublesEdges)
{
    RmatParams p;
    p.scale = 8;
    p.edge_factor = 4.0;
    p.undirected = true;
    CsrGraph g = generateRmat(p);
    EXPECT_EQ(g.numEdges(), 2u * 4 * 256);
}

TEST(Rmat, NoSelfLoops)
{
    RmatParams p;
    p.scale = 9;
    CsrGraph g = generateRmat(p);
    for (std::uint64_t u = 0; u < g.numNodes(); ++u) {
        for (LocalNodeId v : g.neighbors(static_cast<LocalNodeId>(u)))
            EXPECT_NE(v, u);
    }
}

TEST(PowerLaw, DeterministicForSeed)
{
    PowerLawParams p;
    p.num_nodes = 2048;
    CsrGraph a = generatePowerLaw(p);
    CsrGraph b = generatePowerLaw(p);
    EXPECT_EQ(a.rawNeighbors(), b.rawNeighbors());
}

TEST(PowerLaw, NoSelfLoops)
{
    PowerLawParams p;
    p.num_nodes = 1024;
    p.avg_degree = 12;
    CsrGraph g = generatePowerLaw(p);
    for (std::uint64_t u = 0; u < g.numNodes(); ++u) {
        for (LocalNodeId v : g.neighbors(static_cast<LocalNodeId>(u)))
            EXPECT_NE(v, u);
    }
}

TEST(PowerLaw, SlopeIsNegative)
{
    PowerLawParams p;
    p.num_nodes = 1 << 14;
    p.avg_degree = 24;
    CsrGraph g = generatePowerLaw(p);
    DegreeDistribution dd(g);
    EXPECT_LT(dd.powerLawSlope(), -0.5);
}

TEST(PowerLaw, RespectsMaxDegreeCap)
{
    PowerLawParams p;
    p.num_nodes = 4096;
    p.avg_degree = 16;
    p.max_degree = 64;
    CsrGraph g = generatePowerLaw(p);
    EXPECT_LE(g.maxDegree(), 64u);
}

/** Property sweep: the generator hits the requested average degree. */
struct AvgParam
{
    std::uint64_t nodes;
    double avg;
};

class PowerLawAvg : public ::testing::TestWithParam<AvgParam>
{
};

TEST_P(PowerLawAvg, AvgDegreeWithinTenPercent)
{
    auto [nodes, avg] = GetParam();
    PowerLawParams p;
    p.num_nodes = nodes;
    p.avg_degree = avg;
    p.seed = nodes + static_cast<std::uint64_t>(avg);
    CsrGraph g = generatePowerLaw(p);
    EXPECT_NEAR(g.avgDegree(), avg, avg * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PowerLawAvg,
                         ::testing::Values(AvgParam{4096, 14.0},
                                           AvgParam{4096, 56.0},
                                           AvgParam{8192, 110.0},
                                           AvgParam{16384, 18.0},
                                           AvgParam{2048, 75.0}));
