/** @file Tests for degree analysis, graph serialization, and the five
 *  Table I dataset configs. */

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hh"
#include "graph/datasets.hh"
#include "graph/degree.hh"
#include "graph/io.hh"
#include "graph/powerlaw.hh"

using namespace smartsage::graph;

TEST(Degree, CountsAndBuckets)
{
    GraphBuilder b(4);
    b.addEdge(0, 1); // deg(0)=2
    b.addEdge(0, 2);
    b.addEdge(1, 2); // deg(1)=1
    CsrGraph g = std::move(b).build();
    DegreeDistribution dd(g);
    EXPECT_EQ(dd.counts().at(0), 2u); // nodes 2, 3
    EXPECT_EQ(dd.counts().at(1), 1u);
    EXPECT_EQ(dd.counts().at(2), 1u);
    EXPECT_EQ(dd.maxDegree(), 2u);

    auto buckets = dd.logBuckets();
    ASSERT_FALSE(buckets.empty());
    EXPECT_EQ(buckets.front().lo, 0u);
    std::uint64_t total = 0;
    for (const auto &bk : buckets)
        total += bk.count;
    EXPECT_EQ(total, g.numNodes());
}

TEST(Degree, BucketsArePowerOfTwoSpaced)
{
    PowerLawParams p;
    p.num_nodes = 2048;
    p.avg_degree = 20;
    CsrGraph g = generatePowerLaw(p);
    auto buckets = DegreeDistribution(g).logBuckets();
    for (std::size_t i = 0; i + 1 < buckets.size(); ++i)
        EXPECT_LE(buckets[i].hi, buckets[i + 1].lo + buckets[i + 1].hi);
    for (const auto &bk : buckets)
        EXPECT_TRUE(bk.hi == 1 || bk.hi == bk.lo * 2);
}

TEST(GraphIo, RoundTripPreservesGraph)
{
    PowerLawParams p;
    p.num_nodes = 512;
    p.avg_degree = 7;
    CsrGraph g = generatePowerLaw(p);

    std::stringstream ss;
    std::uint64_t written = saveCsr(g, ss);
    EXPECT_GT(written, g.edgeListBytes());

    CsrGraph back = loadCsr(ss);
    EXPECT_EQ(back.offsets(), g.offsets());
    EXPECT_EQ(back.rawNeighbors(), g.rawNeighbors());
}

TEST(GraphIoDeath, BadMagicIsFatal)
{
    std::stringstream ss;
    ss << "not a graph file at all";
    EXPECT_DEATH(loadCsr(ss), "magic");
}

TEST(GraphIoDeath, TruncatedStreamIsFatal)
{
    PowerLawParams p;
    p.num_nodes = 64;
    CsrGraph g = generatePowerLaw(p);
    std::stringstream ss;
    saveCsr(g, ss);
    std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_DEATH(loadCsr(cut), "truncated");
}

TEST(Datasets, AllFiveExistInPaperOrder)
{
    const auto &all = allDatasets();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(datasetName(all[0]), "Reddit");
    EXPECT_EQ(datasetName(all[1]), "Movielens");
    EXPECT_EQ(datasetName(all[2]), "Amazon");
    EXPECT_EQ(datasetName(all[3]), "OGBN-100M");
    EXPECT_EQ(datasetName(all[4]), "Protein-PI");
}

TEST(Datasets, PaperStatsMatchTableOne)
{
    const auto &reddit = datasetSpec(DatasetId::Reddit);
    EXPECT_DOUBLE_EQ(reddit.paper_in_memory.nodes, 233.0e3);
    EXPECT_DOUBLE_EQ(reddit.paper_large.edges, 53.9e9);
    EXPECT_EQ(reddit.feature_dim, 602u);

    const auto &ml = datasetSpec(DatasetId::Movielens);
    EXPECT_DOUBLE_EQ(ml.paper_large.size_gb, 442.0);
    EXPECT_EQ(ml.feature_dim, 1024u);
}

TEST(Datasets, LargeScaleDensifies)
{
    // The densification power law (Fig 13): large-scale variants have
    // higher average degree than the in-memory bases.
    for (auto id : allDatasets()) {
        const auto &spec = datasetSpec(id);
        CsrGraph small = spec.buildInMemory();
        CsrGraph large = spec.buildLargeScale();
        EXPECT_GT(large.numNodes(), small.numNodes()) << spec.name;
        EXPECT_GT(large.avgDegree(), small.avgDegree()) << spec.name;
    }
}

TEST(Datasets, RelativeDegreeOrderingFollowsTableOne)
{
    // Movielens is the densest graph in Table I and OGBN the sparsest;
    // the sim-scale configs must preserve that ordering.
    double ml =
        datasetSpec(DatasetId::Movielens).buildLargeScale().avgDegree();
    double rd =
        datasetSpec(DatasetId::Reddit).buildLargeScale().avgDegree();
    double am =
        datasetSpec(DatasetId::Amazon).buildLargeScale().avgDegree();
    double og =
        datasetSpec(DatasetId::Ogbn100M).buildLargeScale().avgDegree();
    EXPECT_GT(ml, rd);
    EXPECT_GT(rd, am);
    EXPECT_GT(am, og);
}

TEST(Datasets, BuildsAreDeterministic)
{
    CsrGraph a = datasetSpec(DatasetId::Amazon).buildInMemory();
    CsrGraph b = datasetSpec(DatasetId::Amazon).buildInMemory();
    EXPECT_EQ(a.rawNeighbors(), b.rawNeighbors());
}
