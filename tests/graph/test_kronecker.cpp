/** @file Tests for Kronecker fractal expansion (paper Section V). */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/degree.hh"
#include "graph/kronecker.hh"
#include "graph/powerlaw.hh"

using namespace smartsage::graph;

namespace
{

CsrGraph
path3()
{
    GraphBuilder b(3);
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    return std::move(b).build();
}

} // namespace

TEST(KroneckerSeed, DefaultSeedShape)
{
    KroneckerSeed s = KroneckerSeed::defaultSeed();
    EXPECT_EQ(s.k(), 2u);
    EXPECT_EQ(s.nnz(), 3u);
    EXPECT_DOUBLE_EQ(s.densification(), 1.5);
}

TEST(KroneckerSeed, RowsMatchEdges)
{
    KroneckerSeed s(3, {{0, 1}, {0, 2}, {1, 0}, {2, 2}});
    EXPECT_EQ(s.row(0).size(), 2u);
    EXPECT_EQ(s.row(1).size(), 1u);
    EXPECT_EQ(s.row(2).size(), 1u);
}

TEST(KroneckerSeedDeath, EmptyRowPanics)
{
    // Row 1 would orphan every (u, 1) node.
    EXPECT_DEATH(KroneckerSeed(2, {{0, 0}, {0, 1}}), "orphan");
}

TEST(Kronecker, NodeAndEdgeCounts)
{
    CsrGraph base = path3();
    CsrGraph g = kroneckerExpand(base, KroneckerSeed::defaultSeed());
    EXPECT_EQ(g.numNodes(), base.numNodes() * 2);
    EXPECT_EQ(g.numEdges(), base.numEdges() * 3);
}

TEST(Kronecker, ExactEdgeSemantics)
{
    // base: 0->1.  seed: {(0,0),(0,1),(1,0)}.
    // Expanded edges: (0,0)->(1,0), (0,0)->(1,1), (0,1)->(1,0)
    // with node (u,i) = u*2+i.
    GraphBuilder b(2);
    b.addEdge(0, 1);
    CsrGraph base = std::move(b).build();
    CsrGraph g = kroneckerExpand(base, KroneckerSeed::defaultSeed());
    ASSERT_EQ(g.numNodes(), 4u);
    ASSERT_EQ(g.numEdges(), 3u);
    auto n0 = g.neighbors(0); // (0,0)
    ASSERT_EQ(n0.size(), 2u);
    EXPECT_EQ(n0[0], 2u); // (1,0)
    EXPECT_EQ(n0[1], 3u); // (1,1)
    auto n1 = g.neighbors(1); // (0,1)
    ASSERT_EQ(n1.size(), 1u);
    EXPECT_EQ(n1[0], 2u); // (1,0)
    EXPECT_EQ(g.degree(2), 0u);
    EXPECT_EQ(g.degree(3), 0u);
}

TEST(Kronecker, DegreeFormulaHolds)
{
    PowerLawParams p;
    p.num_nodes = 512;
    p.avg_degree = 9;
    CsrGraph base = generatePowerLaw(p);
    KroneckerSeed seed = KroneckerSeed::defaultSeed();
    CsrGraph g = kroneckerExpand(base, seed);
    for (std::uint64_t u = 0; u < base.numNodes(); ++u) {
        for (unsigned i = 0; i < seed.k(); ++i) {
            auto id = static_cast<LocalNodeId>(u * seed.k() + i);
            EXPECT_EQ(g.degree(id),
                      base.degree(static_cast<LocalNodeId>(u)) *
                          seed.row(i).size());
        }
    }
}

TEST(Kronecker, MultiRoundComposition)
{
    CsrGraph base = path3();
    KroneckerSeed seed = KroneckerSeed::defaultSeed();
    CsrGraph two_rounds = kroneckerExpand(base, seed, 2);
    EXPECT_EQ(two_rounds.numNodes(), base.numNodes() * 4);
    EXPECT_EQ(two_rounds.numEdges(), base.numEdges() * 9);
}

TEST(Kronecker, DensificationRaisesAvgDegree)
{
    PowerLawParams p;
    p.num_nodes = 1024;
    p.avg_degree = 10;
    CsrGraph base = generatePowerLaw(p);
    CsrGraph g =
        kroneckerExpand(base, KroneckerSeed::defaultSeed(), 2);
    // nnz/k = 1.5 per round: avg degree x2.25 after two rounds.
    EXPECT_NEAR(g.avgDegree(), base.avgDegree() * 2.25, 1e-9);
}

TEST(Kronecker, PowerLawShapeSurvivesExpansion)
{
    // Fig 13's claim: expansion preserves the degree distribution's
    // power-law slope.
    PowerLawParams p;
    p.num_nodes = 4096;
    p.avg_degree = 30;
    CsrGraph base = generatePowerLaw(p);
    CsrGraph g =
        kroneckerExpand(base, KroneckerSeed::defaultSeed(), 2);
    double s_base = DegreeDistribution(base).powerLawSlope();
    double s_exp = DegreeDistribution(g).powerLawSlope();
    EXPECT_LT(s_base, -0.5);
    EXPECT_LT(s_exp, -0.5);
    EXPECT_NEAR(s_base, s_exp, 0.8);
}

TEST(Kronecker, InvariantsHoldOnExpandedGraph)
{
    CsrGraph base = path3();
    CsrGraph g =
        kroneckerExpand(base, KroneckerSeed::defaultSeed(), 3);
    g.checkInvariants(); // panics on violation
    SUCCEED();
}
