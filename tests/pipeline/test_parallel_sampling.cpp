/**
 * @file
 * Worker-count determinism tests for the functional multi-worker
 * sampling pipeline: for a fixed seed, sampled batches — and a model
 * trained on them — must be bit-identical at 1, 2, and 8 workers.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "gnn/model.hh"
#include "gnn/sampler.hh"
#include "graph/powerlaw.hh"
#include "pipeline/producer.hh"
#include "sim/thread_pool.hh"

using namespace smartsage;
using namespace smartsage::pipeline;

namespace
{

graph::CsrGraph
testGraph()
{
    graph::PowerLawParams p;
    p.num_nodes = 4096;
    p.avg_degree = 20;
    p.seed = 21;
    return graph::generatePowerLaw(p);
}

ParallelSampleConfig
testConfig()
{
    ParallelSampleConfig c;
    c.num_batches = 12;
    c.batch_size = 128;
    c.seed = 0xdead5eed;
    return c;
}

void
expectIdentical(const std::vector<FunctionalBatch> &a,
                const std::vector<FunctionalBatch> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].targets, b[i].targets) << "batch " << i;
        ASSERT_EQ(a[i].subgraph.frontiers, b[i].subgraph.frontiers)
            << "batch " << i;
        ASSERT_EQ(a[i].subgraph.blocks.size(),
                  b[i].subgraph.blocks.size());
        for (std::size_t h = 0; h < a[i].subgraph.blocks.size(); ++h) {
            ASSERT_EQ(a[i].subgraph.blocks[h].offsets,
                      b[i].subgraph.blocks[h].offsets);
            ASSERT_EQ(a[i].subgraph.blocks[h].src_index,
                      b[i].subgraph.blocks[h].src_index);
        }
    }
}

std::vector<FunctionalBatch>
sampleWith(unsigned workers, const graph::CsrGraph &g,
           const gnn::AnySampler &sampler)
{
    sim::ThreadPool pool(workers);
    auto config = testConfig();
    config.workers = workers;
    return sampleBatchesParallel(g, sampler, config, &pool);
}

} // namespace

TEST(ParallelSampling, SageBitIdenticalAcrossWorkerCounts)
{
    graph::CsrGraph g = testGraph();
    gnn::SageSampler sampler({10, 5});
    auto one = sampleWith(1, g, sampler);
    auto two = sampleWith(2, g, sampler);
    auto eight = sampleWith(8, g, sampler);
    expectIdentical(one, two);
    expectIdentical(one, eight);
}

TEST(ParallelSampling, SaintBitIdenticalAcrossWorkerCounts)
{
    graph::CsrGraph g = testGraph();
    gnn::SaintSampler sampler(3);
    auto one = sampleWith(1, g, sampler);
    auto two = sampleWith(2, g, sampler);
    auto eight = sampleWith(8, g, sampler);
    expectIdentical(one, two);
    expectIdentical(one, eight);
}

TEST(ParallelSampling, PipelineConsumesInBatchOrder)
{
    graph::CsrGraph g = testGraph();
    gnn::SageSampler sampler({8, 4});
    sim::ThreadPool pool(4);
    auto config = testConfig();
    config.workers = 4;

    std::vector<std::size_t> order;
    std::vector<FunctionalBatch> streamed;
    runSamplingPipeline(g, sampler, config, &pool,
                        [&](std::size_t i, FunctionalBatch &&batch) {
                            order.push_back(i);
                            streamed.push_back(std::move(batch));
                        });

    ASSERT_EQ(order.size(), config.num_batches);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);

    // The streamed batches equal the batch-indexed parallel result.
    auto reference = sampleBatchesParallel(g, sampler, config, &pool);
    expectIdentical(streamed, reference);
}

TEST(ParallelSampling, NullPoolRunsSerially)
{
    graph::CsrGraph g = testGraph();
    gnn::SageSampler sampler({6});
    auto config = testConfig();
    auto serial = sampleBatchesParallel(g, sampler, config, nullptr);
    sim::ThreadPool pool(4);
    config.workers = 4;
    auto pooled = sampleBatchesParallel(g, sampler, config, &pool);
    expectIdentical(serial, pooled);
}

TEST(ParallelSampling, ConsumerExceptionDrainsProducersAndPropagates)
{
    graph::CsrGraph g = testGraph();
    gnn::SageSampler sampler({6, 3});
    sim::ThreadPool pool(4);
    auto config = testConfig();
    config.workers = 4;

    std::size_t consumed = 0;
    EXPECT_THROW(
        runSamplingPipeline(g, sampler, config, &pool,
                            [&](std::size_t i, FunctionalBatch &&) {
                                consumed++;
                                if (i == 3)
                                    throw std::runtime_error("boom");
                            }),
        std::runtime_error);
    EXPECT_EQ(consumed, 4u);

    // The pool must be fully drained and reusable afterwards.
    auto batches = sampleBatchesParallel(g, sampler, config, &pool);
    EXPECT_EQ(batches.size(), config.num_batches);
}

TEST(ParallelSampling, TrainedModelIdenticalAcrossWorkerCounts)
{
    graph::CsrGraph g = testGraph();
    gnn::SageSampler sampler({10, 5});
    gnn::FeatureTable features(g.numNodes(), 16, 8);

    gnn::ModelConfig mc;
    mc.in_dim = 16;
    mc.hidden_dim = 16;
    mc.num_classes = 8;
    mc.depth = 2;

    auto trainWith = [&](unsigned workers) {
        gnn::SageModel model(mc);
        sim::ThreadPool pool(workers);
        auto config = testConfig();
        config.workers = workers;
        runSamplingPipeline(
            g, sampler, config, &pool,
            [&](std::size_t, FunctionalBatch &&batch) {
                model.trainStep(batch.subgraph, features);
            });
        return model;
    };

    gnn::SageModel m1 = trainWith(1);
    gnn::SageModel m8 = trainWith(8);

    ASSERT_EQ(m1.layers().size(), m8.layers().size());
    for (std::size_t l = 0; l < m1.layers().size(); ++l) {
        // Training consumes batches in batch order on one thread, so
        // the weights must be bit-identical, not merely close.
        EXPECT_EQ(m1.layers()[l].wSelf().data(),
                  m8.layers()[l].wSelf().data());
        EXPECT_EQ(m1.layers()[l].wNeigh().data(),
                  m8.layers()[l].wNeigh().data());
        EXPECT_EQ(m1.layers()[l].biasRow().data(),
                  m8.layers()[l].biasRow().data());
    }
}
