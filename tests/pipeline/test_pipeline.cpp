/** @file Tests for producers, the worker scheduler, the training
 *  pipeline, and the Fig 5 memory profiler. */

#include <gtest/gtest.h>

#include "gnn/gpu_model.hh"
#include "gnn/sampler.hh"
#include "graph/powerlaw.hh"
#include "pipeline/producer.hh"
#include "pipeline/profiler.hh"
#include "pipeline/scheduler.hh"
#include "pipeline/trainer.hh"

using namespace smartsage;
using namespace smartsage::pipeline;
namespace sim = smartsage::sim;

namespace
{

struct Fixture
{
    graph::CsrGraph graph;
    host::HostConfig host;
    graph::EdgeLayout layout;
    gnn::SageSampler sampler{{8, 4}};

    Fixture()
    {
        graph::PowerLawParams p;
        p.num_nodes = 4096;
        p.avg_degree = 30;
        p.seed = 23;
        graph = graph::generatePowerLaw(p);
        host.page_cache_bytes = sim::KiB(512);
        host.scratchpad_bytes = sim::KiB(512);
    }
};

} // namespace

TEST(Producer, CpuJobFinishesAndYieldsSubgraph)
{
    Fixture f;
    host::DramEdgeStore store(f.host);
    CpuProducer producer(f.graph, f.sampler, store, f.host, f.layout);
    sim::Rng rng(1);
    auto targets = gnn::selectTargets(f.graph, 64, rng);
    auto job = producer.startBatch(targets, rng);

    sim::Tick t = 0;
    std::size_t steps = 0;
    while (!job->done()) {
        sim::Tick next = job->step(t);
        EXPECT_GE(next, t);
        t = next;
        ++steps;
    }
    EXPECT_GT(steps, 64u); // at least one step per frontier node
    gnn::Subgraph sg = job->takeSubgraph();
    EXPECT_EQ(sg.targets().size(), 64u);
    sg.checkInvariants();
}

TEST(Scheduler, ProducesRequestedBatchCount)
{
    Fixture f;
    host::DramEdgeStore store(f.host);
    CpuProducer producer(f.graph, f.sampler, store, f.host, f.layout);
    ScheduleConfig sc;
    sc.workers = 4;
    sc.num_batches = 10;
    sc.batch_size = 32;
    auto batches = runWorkers(producer, f.graph, sc);
    ASSERT_EQ(batches.size(), 10u);
    for (const auto &b : batches) {
        EXPECT_EQ(b.stats.num_targets, 32u);
        EXPECT_GT(b.sampling_time, 0u);
        EXPECT_GT(b.stats.total_edges, 0u);
    }
}

TEST(Scheduler, ResultsSortedByReadyTime)
{
    Fixture f;
    host::DramEdgeStore store(f.host);
    CpuProducer producer(f.graph, f.sampler, store, f.host, f.layout);
    ScheduleConfig sc;
    sc.workers = 3;
    sc.num_batches = 9;
    sc.batch_size = 16;
    auto batches = runWorkers(producer, f.graph, sc);
    for (std::size_t i = 1; i < batches.size(); ++i)
        EXPECT_GE(batches[i].ready, batches[i - 1].ready);
}

TEST(Scheduler, MoreWorkersFinishSoonerOnCpuPath)
{
    Fixture f;
    host::PmemEdgeStore store(f.host); // stateless path: clean compare
    CpuProducer producer(f.graph, f.sampler, store, f.host, f.layout);

    ScheduleConfig one;
    one.workers = 1;
    one.num_batches = 8;
    one.batch_size = 64;
    auto serial = runWorkers(producer, f.graph, one);

    ScheduleConfig eight = one;
    eight.workers = 8;
    auto parallel = runWorkers(producer, f.graph, eight);

    EXPECT_LT(parallel.back().ready, serial.back().ready / 4);
}

TEST(Scheduler, DeterministicAcrossRuns)
{
    Fixture f;
    host::DramEdgeStore store(f.host);
    CpuProducer producer(f.graph, f.sampler, store, f.host, f.layout);
    ScheduleConfig sc;
    sc.workers = 2;
    sc.num_batches = 6;
    sc.batch_size = 16;
    auto a = runWorkers(producer, f.graph, sc);
    auto b = runWorkers(producer, f.graph, sc);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].ready, b[i].ready);
}

TEST(Scheduler, BatchMixCyclesTenantSizes)
{
    Fixture f;
    host::DramEdgeStore store(f.host);
    CpuProducer producer(f.graph, f.sampler, store, f.host, f.layout);
    ScheduleConfig sc;
    sc.workers = 1; // serial: completion order == batch-index order
    sc.num_batches = 6;
    sc.batch_mix = {16, 64, 128};
    EXPECT_EQ(sc.sizeOfBatch(0), 16u);
    EXPECT_EQ(sc.sizeOfBatch(4), 64u);
    auto batches = runWorkers(producer, f.graph, sc);
    ASSERT_EQ(batches.size(), 6u);
    for (std::size_t i = 0; i < batches.size(); ++i)
        EXPECT_EQ(batches[i].stats.num_targets,
                  sc.batch_mix[i % sc.batch_mix.size()])
            << "batch " << i;
}

TEST(Scheduler, EmptyMixFallsBackToBatchSize)
{
    ScheduleConfig sc;
    sc.batch_size = 42;
    EXPECT_EQ(sc.sizeOfBatch(0), 42u);
    EXPECT_EQ(sc.sizeOfBatch(7), 42u);
}

TEST(Trainer, BreakdownAndIdleAreConsistent)
{
    Fixture f;
    host::DramEdgeStore store(f.host);
    CpuProducer producer(f.graph, f.sampler, store, f.host, f.layout);

    gnn::ModelConfig mc;
    mc.in_dim = 32;
    mc.depth = 2;
    gnn::GpuTimingModel gpu(gnn::GpuConfig{}, mc);
    gnn::FeatureTable ft(f.graph.numNodes(), 32, 8);

    PipelineConfig pc;
    pc.workers = 4;
    pc.num_batches = 8;
    pc.batch_size = 64;
    TrainingPipeline pipe(pc, f.host, gpu, ft);
    PipelineResult r = pipe.run(producer, f.graph);

    EXPECT_EQ(r.batches, 8u);
    EXPECT_GT(r.makespan, 0u);
    EXPECT_GE(r.gpu_idle_frac, 0.0);
    EXPECT_LE(r.gpu_idle_frac, 1.0);
    EXPECT_GT(r.throughput(), 0.0);
    EXPECT_GT(r.stages.sampling, 0.0);
    EXPECT_GT(r.stages.feature, 0.0);
    EXPECT_GT(r.stages.transfer, 0.0);
    EXPECT_GT(r.stages.gpu, 0.0);
    EXPECT_GT(r.stages.other, 0.0);

    auto n = r.stages.normalized();
    EXPECT_NEAR(n.sampling + n.feature + n.transfer + n.gpu + n.other,
                1.0, 1e-9);
}

TEST(Trainer, GpuBusyWhenProducersAreFast)
{
    // With many workers over DRAM, the GPU should rarely starve
    // (Fig 7, in-memory bars).
    Fixture f;
    host::DramEdgeStore store(f.host);
    CpuProducer producer(f.graph, f.sampler, store, f.host, f.layout);
    gnn::ModelConfig mc;
    mc.in_dim = 256;
    mc.depth = 2;
    gnn::GpuTimingModel gpu(gnn::GpuConfig{}, mc);
    gnn::FeatureTable ft(f.graph.numNodes(), 256, 8);

    PipelineConfig pc;
    pc.workers = 12;
    pc.num_batches = 12;
    pc.batch_size = 128;
    TrainingPipeline pipe(pc, f.host, gpu, ft);
    PipelineResult r = pipe.run(producer, f.graph);
    EXPECT_LT(r.gpu_idle_frac, 0.5);
}

TEST(Profiler, MissRateBetweenZeroAndOne)
{
    Fixture f;
    SamplingMemoryProfiler prof(f.host, f.layout);
    sim::Rng rng(2);
    auto targets = gnn::selectTargets(f.graph, 128, rng);
    f.sampler.sample(f.graph, targets, rng, &prof);

    EXPECT_GT(prof.llcMissRate(), 0.0);
    EXPECT_LT(prof.llcMissRate(), 1.0);
    EXPECT_GT(prof.dramBwUtilization(12), 0.0);
    EXPECT_LE(prof.dramBwUtilization(12), 1.0);
}

TEST(Profiler, BandwidthUtilizationIsLowDespiteMissRate)
{
    // Fig 5's headline: sampling is latency-bound — high LLC miss rate
    // but low DRAM bandwidth utilization for a single worker. Use an
    // LLC smaller than the edge array, as at real scale.
    Fixture f;
    host::HostConfig tight = f.host;
    tight.llc_bytes = sim::KiB(64);
    SamplingMemoryProfiler prof(tight, f.layout);
    sim::Rng rng(3);
    for (int b = 0; b < 4; ++b) {
        auto targets = gnn::selectTargets(f.graph, 256, rng);
        f.sampler.sample(f.graph, targets, rng, &prof);
    }
    EXPECT_GT(prof.llcMissRate(), 0.3);
    EXPECT_LT(prof.dramBwUtilization(1), 0.1);
}

TEST(Profiler, ResetClears)
{
    Fixture f;
    SamplingMemoryProfiler prof(f.host, f.layout);
    sim::Rng rng(4);
    auto targets = gnn::selectTargets(f.graph, 32, rng);
    f.sampler.sample(f.graph, targets, rng, &prof);
    prof.reset();
    EXPECT_DOUBLE_EQ(prof.dramBwUtilization(1), 0.0);
}
