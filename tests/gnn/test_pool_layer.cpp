/** @file Gradient checks and behavioural tests for the max-pooling
 *  aggregator variant (GraphSAGE pool, Fig 2's pooling function). */

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/pool_layer.hh"
#include "sim/random.hh"

using namespace smartsage::gnn;
using smartsage::sim::Rng;

namespace
{

SampledBlock
tinyBlock()
{
    SampledBlock b;
    b.offsets = {0, 2, 3};    // dst0 <- {src2, src3}, dst1 <- {src1}
    b.src_index = {2, 3, 1};
    return b;
}

double
lossOf(const Tensor2D &out)
{
    double l = 0;
    for (float v : out.data())
        l += 0.5 * double(v) * v;
    return l;
}

} // namespace

TEST(SagePoolLayer, ForwardShape)
{
    Rng rng(1);
    SagePoolLayer layer(3, 5, 2, false, rng);
    SampledBlock block = tinyBlock();
    Tensor2D h = Tensor2D::uniform(4, 3, 1.0f, rng);
    SagePoolContext ctx;
    Tensor2D out = layer.forward(h, block, ctx);
    EXPECT_EQ(out.rows(), 2u);
    EXPECT_EQ(out.cols(), 2u);
    EXPECT_EQ(ctx.pooled.rows(), 2u);
    EXPECT_EQ(ctx.pooled.cols(), 5u);
}

TEST(SagePoolLayer, PooledIsElementwiseMaxOfReluedMlp)
{
    Rng rng(2);
    SagePoolLayer layer(2, 3, 2, false, rng);
    SampledBlock block = tinyBlock();
    Tensor2D h = Tensor2D::uniform(4, 2, 1.0f, rng);
    SagePoolContext ctx;
    layer.forward(h, block, ctx);

    // Recompute z = relu(h * W_pool + b_pool) by hand for dst0's srcs
    // {2, 3} and check the max.
    for (unsigned c = 0; c < 3; ++c) {
        auto z = [&](std::size_t r) {
            float acc = layer.mutableBPool().at(0, c);
            for (unsigned j = 0; j < 2; ++j)
                acc += h.at(r, j) * layer.mutableWPool().at(j, c);
            return acc > 0 ? acc : 0.0f;
        };
        EXPECT_NEAR(ctx.pooled.at(0, c), std::max(z(2), z(3)), 1e-5);
        EXPECT_NEAR(ctx.pooled.at(1, c), z(1), 1e-5);
    }
}

TEST(SagePoolLayer, IsolatedDstPoolsZero)
{
    Rng rng(3);
    SagePoolLayer layer(2, 3, 2, false, rng);
    SampledBlock block;
    block.offsets = {0, 0};
    Tensor2D h(1, 2);
    SagePoolContext ctx;
    layer.forward(h, block, ctx);
    for (unsigned c = 0; c < 3; ++c)
        EXPECT_FLOAT_EQ(ctx.pooled.at(0, c), 0.0f);
}

class SagePoolGradCheck : public ::testing::TestWithParam<bool>
{
};

TEST_P(SagePoolGradCheck, MatchesNumericalGradients)
{
    bool relu = GetParam();
    Rng rng(4);
    SagePoolLayer layer(3, 4, 2, relu, rng);
    SampledBlock block = tinyBlock();
    Rng drng(5);
    Tensor2D h = Tensor2D::uniform(4, 3, 1.0f, drng);

    SagePoolContext ctx;
    Tensor2D out = layer.forward(h, block, ctx);
    SagePoolGrads grads;
    Tensor2D d_out = out; // dL/dout for L = sum(out^2)/2
    Tensor2D d_in = layer.backward(d_out, ctx, grads);

    const float eps = 1e-3f;
    auto check = [&](Tensor2D &param, const Tensor2D &grad,
                     const char *name) {
        for (std::size_t i = 0; i < param.rows(); ++i) {
            for (std::size_t j = 0; j < param.cols(); ++j) {
                float saved = param.at(i, j);
                SagePoolContext c1, c2;
                param.at(i, j) = saved + eps;
                double lp = lossOf(layer.forward(h, block, c1));
                param.at(i, j) = saved - eps;
                double lm = lossOf(layer.forward(h, block, c2));
                param.at(i, j) = saved;
                EXPECT_NEAR(grad.at(i, j), (lp - lm) / (2 * eps), 3e-2)
                    << name << "[" << i << "," << j << "]";
            }
        }
    };
    check(layer.mutableWPool(), grads.w_pool, "w_pool");
    check(layer.mutableBPool(), grads.b_pool, "b_pool");
    check(layer.mutableWSelf(), grads.w_self, "w_self");
    check(layer.mutableWNeigh(), grads.w_neigh, "w_neigh");
    check(layer.mutableBias(), grads.bias, "bias");

    for (std::size_t i = 0; i < h.rows(); ++i) {
        for (std::size_t j = 0; j < h.cols(); ++j) {
            float saved = h.at(i, j);
            SagePoolContext c1, c2;
            h.at(i, j) = saved + eps;
            double lp = lossOf(layer.forward(h, block, c1));
            h.at(i, j) = saved - eps;
            double lm = lossOf(layer.forward(h, block, c2));
            h.at(i, j) = saved;
            EXPECT_NEAR(d_in.at(i, j), (lp - lm) / (2 * eps), 3e-2)
                << "h[" << i << "," << j << "]";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(LinearAndRelu, SagePoolGradCheck,
                         ::testing::Values(false, true));

TEST(SagePoolLayer, TrainingStepReducesQuadraticLoss)
{
    Rng rng(6);
    SagePoolLayer layer(3, 4, 2, true, rng);
    SampledBlock block = tinyBlock();
    Rng drng(7);
    Tensor2D h = Tensor2D::uniform(4, 3, 1.0f, drng);

    double before = 0, after = 0;
    {
        SagePoolContext ctx;
        Tensor2D out = layer.forward(h, block, ctx);
        before = lossOf(out);
        SagePoolGrads grads;
        layer.backward(out, ctx, grads);
        layer.applyGrads(grads, 0.05f);
    }
    {
        SagePoolContext ctx;
        after = lossOf(layer.forward(h, block, ctx));
    }
    EXPECT_LT(after, before);
}
