/**
 * @file
 * Golden equivalence tests for the hot-path rework: tiled GEMM and
 * fused aggregate kernels must match the naive reference within 1e-5,
 * and the flat-table sampler fast path must be bit-identical to the
 * hash-based baseline.
 */

#include <gtest/gtest.h>

#include "gnn/layers.hh"
#include "gnn/sampler.hh"
#include "gnn/tensor.hh"
#include "graph/powerlaw.hh"
#include "sim/random.hh"

using namespace smartsage::gnn;
using namespace smartsage::graph;
using smartsage::sim::Rng;

namespace
{

CsrGraph
testGraph()
{
    PowerLawParams p;
    p.num_nodes = 4096;
    p.avg_degree = 24;
    p.seed = 11;
    return generatePowerLaw(p);
}

void
expectClose(const Tensor2D &a, const Tensor2D &b, double tol)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            // 1e-5 relative: reduction reordering legitimately
            // perturbs long dot products by ~|value| * eps * terms.
            double scale = std::max(
                1.0, std::max(std::abs(double(a.at(i, j))),
                              std::abs(double(b.at(i, j)))));
            ASSERT_NEAR(a.at(i, j), b.at(i, j), tol * scale)
                << "at (" << i << ", " << j << ")";
        }
    }
}

/** Run @p f under both kernel modes and compare the results. */
template <typename F>
void
compareModes(F &&f, double tol)
{
    Tensor2D naive, tiled;
    {
        ScopedKernelMode guard(KernelMode::Naive);
        naive = f();
    }
    {
        ScopedKernelMode guard(KernelMode::Tiled);
        tiled = f();
    }
    expectClose(naive, tiled, tol);
}

} // namespace

TEST(KernelGolden, MatmulMatchesNaive)
{
    Rng rng(1);
    // Odd sizes exercise every remainder path of the blocked kernels.
    for (auto [m, k, n] :
         {std::tuple<int, int, int>{1, 1, 1}, {7, 5, 3}, {37, 53, 29},
          {130, 65, 129}, {256, 64, 64}}) {
        Tensor2D a = Tensor2D::uniform(m, k, 1.0f, rng);
        Tensor2D b = Tensor2D::uniform(k, n, 1.0f, rng);
        compareModes([&] { return matmul(a, b); }, 1e-5);
    }
}

TEST(KernelGolden, MatmulTNMatchesNaive)
{
    Rng rng(2);
    // Reduction lengths stay layer-realistic (<= a few hundred): the
    // 1e-5 bound is a per-term rounding budget, not a bound on
    // arbitrarily long cancellation-heavy sums.
    for (auto [r, m, n] :
         {std::tuple<int, int, int>{1, 1, 1}, {6, 5, 3}, {129, 37, 65},
          {300, 32, 16}}) {
        Tensor2D a = Tensor2D::uniform(r, m, 1.0f, rng);
        Tensor2D b = Tensor2D::uniform(r, n, 1.0f, rng);
        compareModes([&] { return matmulTN(a, b); }, 1e-5);
    }
}

TEST(KernelGolden, MatmulNTMatchesNaive)
{
    Rng rng(3);
    for (auto [m, n, k] :
         {std::tuple<int, int, int>{1, 1, 1}, {5, 7, 9}, {65, 130, 37},
          {500, 33, 64}}) {
        Tensor2D a = Tensor2D::uniform(m, k, 1.0f, rng);
        Tensor2D b = Tensor2D::uniform(n, k, 1.0f, rng);
        compareModes([&] { return matmulNT(a, b); }, 1e-5);
    }
}

TEST(KernelGolden, IntoVariantsMatchAllocatingApi)
{
    Rng rng(4);
    Tensor2D a = Tensor2D::uniform(40, 24, 1.0f, rng);
    Tensor2D b = Tensor2D::uniform(24, 18, 1.0f, rng);
    Tensor2D c;
    matmulInto(a, b, c);
    expectClose(c, matmul(a, b), 0.0);

    // Accumulate on top of an existing product doubles it.
    matmulAccumulate(a, b, c);
    Tensor2D doubled = matmul(a, b);
    doubled *= 2.0f;
    expectClose(c, doubled, 1e-5);

    // Reuse with a different (smaller) shape must still be exact.
    Tensor2D a2 = Tensor2D::uniform(9, 8, 1.0f, rng);
    Tensor2D b2 = Tensor2D::uniform(8, 5, 1.0f, rng);
    matmulInto(a2, b2, c);
    expectClose(c, matmul(a2, b2), 0.0);
}

TEST(KernelGolden, LayerForwardBackwardMatchNaive)
{
    CsrGraph g = testGraph();
    SageSampler sampler({12, 6});
    Rng rng(5);
    auto targets = selectTargets(g, 128, rng);
    Subgraph sg = sampler.sample(g, targets, rng);
    const SampledBlock &block = sg.blocks[1];

    Rng wrng(6);
    SageMeanLayer layer(16, 8, true, wrng);
    Rng hrng(7);
    Tensor2D h_src =
        Tensor2D::uniform(sg.frontiers[2].size(), 16, 1.0f, hrng);
    Tensor2D d_out = Tensor2D::uniform(block.numDsts(), 8, 1.0f, hrng);

    auto run = [&](KernelMode mode, Tensor2D &out, Tensor2D &d_src,
                   SageLayerGrads &grads) {
        ScopedKernelMode guard(mode);
        SageContext ctx;
        out = layer.forward(h_src, block, ctx);
        d_src = layer.backward(d_out, ctx, grads);
    };

    Tensor2D out_n, out_t, d_n, d_t;
    SageLayerGrads g_n, g_t;
    run(KernelMode::Naive, out_n, d_n, g_n);
    run(KernelMode::Tiled, out_t, d_t, g_t);

    expectClose(out_n, out_t, 1e-5);
    expectClose(d_n, d_t, 1e-5);
    expectClose(g_n.w_self, g_t.w_self, 1e-5);
    expectClose(g_n.w_neigh, g_t.w_neigh, 1e-5);
    expectClose(g_n.bias, g_t.bias, 1e-5);
}

TEST(SamplerGolden, SageFastPathBitIdenticalToBaseline)
{
    CsrGraph g = testGraph();
    SageSampler sampler({25, 10});
    Rng r1(42), r2(42);
    auto targets = selectTargets(g, 256, r1);
    auto same = selectTargets(g, 256, r2); // keeps r2 in lockstep
    ASSERT_EQ(targets, same);
    Subgraph fast = sampler.sample(g, targets, r1);
    Subgraph baseline = sampler.sampleBaseline(g, targets, r2);

    ASSERT_EQ(fast.frontiers, baseline.frontiers);
    ASSERT_EQ(fast.blocks.size(), baseline.blocks.size());
    for (std::size_t h = 0; h < fast.blocks.size(); ++h) {
        EXPECT_EQ(fast.blocks[h].offsets, baseline.blocks[h].offsets);
        EXPECT_EQ(fast.blocks[h].src_index,
                  baseline.blocks[h].src_index);
    }
}

TEST(SamplerGolden, SaintFastPathBitIdenticalToBaseline)
{
    CsrGraph g = testGraph();
    SaintSampler sampler(4);
    Rng r1(43), r2(43);
    auto roots = selectTargets(g, 128, r1);
    auto same = selectTargets(g, 128, r2);
    ASSERT_EQ(roots, same);

    Subgraph fast = sampler.sample(g, roots, r1);
    Subgraph baseline = sampler.sampleBaseline(g, roots, r2);
    ASSERT_EQ(fast.frontiers, baseline.frontiers);
    for (std::size_t h = 0; h < fast.blocks.size(); ++h) {
        EXPECT_EQ(fast.blocks[h].offsets, baseline.blocks[h].offsets);
        EXPECT_EQ(fast.blocks[h].src_index,
                  baseline.blocks[h].src_index);
    }
}

TEST(SamplerGolden, DuplicateTargetsStayBitIdenticalToBaseline)
{
    CsrGraph g = testGraph();
    SageSampler sampler({5, 3});
    // Duplicates in the caller-provided batch: the prefix index must
    // resolve the same way on both paths (last occurrence wins).
    std::vector<LocalNodeId> targets = {7, 7, 12, 7, 12, 3};
    Rng r1(17), r2(17);
    Subgraph fast = sampler.sample(g, targets, r1);
    Subgraph baseline = sampler.sampleBaseline(g, targets, r2);
    ASSERT_EQ(fast.frontiers, baseline.frontiers);
    for (std::size_t h = 0; h < fast.blocks.size(); ++h) {
        EXPECT_EQ(fast.blocks[h].offsets, baseline.blocks[h].offsets);
        EXPECT_EQ(fast.blocks[h].src_index,
                  baseline.blocks[h].src_index);
    }
}

TEST(SamplerGolden, ScratchReuseDoesNotChangeOutput)
{
    CsrGraph g = testGraph();
    SageSampler sampler({8, 4});
    SampleScratch scratch;
    Subgraph reused;
    std::vector<Subgraph> fresh;

    for (int i = 0; i < 4; ++i) {
        Rng ra(100 + i), rb(100 + i);
        auto ta = selectTargets(g, 64, ra);
        auto tb = selectTargets(g, 64, rb);
        ASSERT_EQ(ta, tb);
        sampler.sampleInto(g, ta, ra, scratch, reused);
        fresh.push_back(sampler.sample(g, tb, rb));
        EXPECT_EQ(reused.frontiers, fresh.back().frontiers);
        for (std::size_t h = 0; h < reused.blocks.size(); ++h) {
            EXPECT_EQ(reused.blocks[h].offsets,
                      fresh.back().blocks[h].offsets);
            EXPECT_EQ(reused.blocks[h].src_index,
                      fresh.back().blocks[h].src_index);
        }
    }
}

TEST(SelectTargets, DenseBatchUsesEveryNodeAtMostOnce)
{
    CsrGraph g = testGraph();
    // count == numNodes: a full permutation must come back.
    Rng rng(9);
    auto all = selectTargets(g, g.numNodes(), rng);
    std::vector<bool> seen(g.numNodes(), false);
    for (auto u : all) {
        ASSERT_LT(u, g.numNodes());
        ASSERT_FALSE(seen[u]) << "duplicate target " << u;
        seen[u] = true;
    }
    EXPECT_EQ(all.size(), g.numNodes());

    // Near-full batches (the old coupon-collector regime) stay fast
    // and distinct.
    Rng rng2(10);
    auto most = selectTargets(g, g.numNodes() - 1, rng2);
    std::fill(seen.begin(), seen.end(), false);
    for (auto u : most) {
        ASSERT_FALSE(seen[u]);
        seen[u] = true;
    }
}
