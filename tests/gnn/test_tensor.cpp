/** @file Unit tests for the dense tensor mini-library. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/tensor.hh"
#include "sim/random.hh"

using namespace smartsage::gnn;
using smartsage::sim::Rng;

TEST(Tensor, ZeroInitialized)
{
    Tensor2D t(2, 3);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_EQ(t.at(i, j), 0.0f);
    }
}

TEST(Tensor, UniformWithinScale)
{
    Rng rng(1);
    Tensor2D t = Tensor2D::uniform(8, 8, 0.5f, rng);
    for (float v : t.data()) {
        EXPECT_GE(v, -0.5f);
        EXPECT_LE(v, 0.5f);
    }
}

TEST(Tensor, MatmulHandValues)
{
    Tensor2D a(2, 2), b(2, 2);
    a.at(0, 0) = 1; a.at(0, 1) = 2;
    a.at(1, 0) = 3; a.at(1, 1) = 4;
    b.at(0, 0) = 5; b.at(0, 1) = 6;
    b.at(1, 0) = 7; b.at(1, 1) = 8;
    Tensor2D c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Tensor, MatmulTNEqualsExplicitTranspose)
{
    Rng rng(2);
    Tensor2D a = Tensor2D::uniform(4, 3, 1.0f, rng);
    Tensor2D b = Tensor2D::uniform(4, 5, 1.0f, rng);
    Tensor2D c = matmulTN(a, b); // A^T (3x4) * B (4x5)
    ASSERT_EQ(c.rows(), 3u);
    ASSERT_EQ(c.cols(), 5u);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            float want = 0;
            for (std::size_t k = 0; k < 4; ++k)
                want += a.at(k, i) * b.at(k, j);
            EXPECT_NEAR(c.at(i, j), want, 1e-5);
        }
    }
}

TEST(Tensor, MatmulNTEqualsExplicitTranspose)
{
    Rng rng(3);
    Tensor2D a = Tensor2D::uniform(4, 3, 1.0f, rng);
    Tensor2D b = Tensor2D::uniform(5, 3, 1.0f, rng);
    Tensor2D c = matmulNT(a, b); // A (4x3) * B^T (3x5)
    ASSERT_EQ(c.rows(), 4u);
    ASSERT_EQ(c.cols(), 5u);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            float want = 0;
            for (std::size_t k = 0; k < 3; ++k)
                want += a.at(i, k) * b.at(j, k);
            EXPECT_NEAR(c.at(i, j), want, 1e-5);
        }
    }
}

TEST(Tensor, ReluForwardBackward)
{
    Tensor2D x(1, 4);
    x.at(0, 0) = -1;
    x.at(0, 1) = 2;
    x.at(0, 2) = 0;
    x.at(0, 3) = 3;
    auto mask = reluForward(x);
    EXPECT_FLOAT_EQ(x.at(0, 0), 0);
    EXPECT_FLOAT_EQ(x.at(0, 1), 2);
    EXPECT_FLOAT_EQ(x.at(0, 2), 0);

    Tensor2D g(1, 4);
    for (std::size_t j = 0; j < 4; ++j)
        g.at(0, j) = 1.0f;
    reluBackward(g, mask);
    EXPECT_FLOAT_EQ(g.at(0, 0), 0);
    EXPECT_FLOAT_EQ(g.at(0, 1), 1);
    EXPECT_FLOAT_EQ(g.at(0, 2), 0);
    EXPECT_FLOAT_EQ(g.at(0, 3), 1);
}

TEST(Tensor, AddBiasBroadcastsRows)
{
    Tensor2D x(2, 2);
    Tensor2D b(1, 2);
    b.at(0, 0) = 1;
    b.at(0, 1) = -1;
    addBias(x, b);
    EXPECT_FLOAT_EQ(x.at(0, 0), 1);
    EXPECT_FLOAT_EQ(x.at(1, 1), -1);
}

TEST(Tensor, SoftmaxCrossEntropyUniformLogits)
{
    Tensor2D logits(1, 4); // all zero -> uniform
    Tensor2D grad;
    double loss = softmaxCrossEntropy(logits, {2}, grad);
    EXPECT_NEAR(loss, std::log(4.0), 1e-6);
    EXPECT_NEAR(grad.at(0, 2), 0.25 - 1.0, 1e-6);
    EXPECT_NEAR(grad.at(0, 0), 0.25, 1e-6);
}

TEST(Tensor, SoftmaxGradientMatchesNumerical)
{
    Rng rng(5);
    Tensor2D logits = Tensor2D::uniform(3, 5, 1.0f, rng);
    std::vector<std::uint32_t> labels = {1, 4, 0};
    Tensor2D grad;
    softmaxCrossEntropy(logits, labels, grad);

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            Tensor2D plus = logits, minus = logits;
            plus.at(i, j) += eps;
            minus.at(i, j) -= eps;
            Tensor2D dummy;
            double lp = softmaxCrossEntropy(plus, labels, dummy);
            double lm = softmaxCrossEntropy(minus, labels, dummy);
            double numeric = (lp - lm) / (2 * eps);
            EXPECT_NEAR(grad.at(i, j), numeric, 1e-3);
        }
    }
}

TEST(Tensor, ArgmaxRows)
{
    Tensor2D x(2, 3);
    x.at(0, 1) = 5;
    x.at(1, 2) = 7;
    auto am = argmaxRows(x);
    EXPECT_EQ(am[0], 1u);
    EXPECT_EQ(am[1], 2u);
}

TEST(Tensor, PlusEqualsAndScale)
{
    Tensor2D a(1, 2), b(1, 2);
    a.at(0, 0) = 1;
    b.at(0, 0) = 2;
    a += b;
    a *= 3.0f;
    EXPECT_FLOAT_EQ(a.at(0, 0), 9);
    EXPECT_GT(a.normSq(), 0.0);
    a.zero();
    EXPECT_EQ(a.normSq(), 0.0);
}

TEST(TensorDeath, ShapeMismatchPanics)
{
    Tensor2D a(2, 3), b(2, 3);
    EXPECT_DEATH(matmul(a, b), "mismatch");
}
