/** @file Gradient checks for the SAGE layer and learning tests for the
 *  full model — the functional heart of the reproduction. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/feature_table.hh"
#include "gnn/layers.hh"
#include "gnn/model.hh"
#include "gnn/sampler.hh"
#include "graph/builder.hh"
#include "graph/powerlaw.hh"

using namespace smartsage::gnn;
using namespace smartsage::graph;
using smartsage::sim::Rng;

namespace
{

/** Tiny fixed block: 2 dsts over a 4-node src frontier. */
SampledBlock
tinyBlock()
{
    SampledBlock b;
    b.offsets = {0, 2, 3};    // dst0 <- {src2, src3}, dst1 <- {src1}
    b.src_index = {2, 3, 1};
    return b;
}

double
lossOf(const Tensor2D &out)
{
    // Simple quadratic objective sum(out^2)/2 for gradient checking.
    double l = 0;
    for (float v : out.data())
        l += 0.5 * double(v) * v;
    return l;
}

Tensor2D
lossGrad(const Tensor2D &out)
{
    Tensor2D g = out; // dL/dout = out
    return g;
}

} // namespace

TEST(SageLayer, ForwardShapeAndAggregation)
{
    Rng rng(1);
    SageMeanLayer layer(2, 3, false, rng);
    SampledBlock block = tinyBlock();

    Tensor2D h(4, 2);
    for (std::size_t i = 0; i < 4; ++i) {
        h.at(i, 0) = float(i);
        h.at(i, 1) = float(2 * i);
    }

    SageContext ctx;
    Tensor2D out = layer.forward(h, block, ctx);
    EXPECT_EQ(out.rows(), 2u);
    EXPECT_EQ(out.cols(), 3u);

    // Aggregate of dst0 = mean(rows 2, 3) = (2.5, 5).
    EXPECT_FLOAT_EQ(ctx.h_agg.at(0, 0), 2.5f);
    EXPECT_FLOAT_EQ(ctx.h_agg.at(0, 1), 5.0f);
    // Aggregate of dst1 = row 1 = (1, 2).
    EXPECT_FLOAT_EQ(ctx.h_agg.at(1, 0), 1.0f);
    // Self term is the prefix rows.
    EXPECT_FLOAT_EQ(ctx.h_self.at(1, 0), 1.0f);
}

TEST(SageLayer, IsolatedDstAggregatesZero)
{
    Rng rng(2);
    SageMeanLayer layer(2, 2, false, rng);
    SampledBlock block;
    block.offsets = {0, 0}; // one dst, no srcs
    Tensor2D h(1, 2);
    h.at(0, 0) = 3;
    SageContext ctx;
    Tensor2D out = layer.forward(h, block, ctx);
    EXPECT_FLOAT_EQ(ctx.h_agg.at(0, 0), 0.0f);
    EXPECT_EQ(out.rows(), 1u);
}

/** Numerical gradient check of every parameter and the input. */
class SageLayerGradCheck : public ::testing::TestWithParam<bool>
{
};

TEST_P(SageLayerGradCheck, MatchesNumericalGradients)
{
    bool relu = GetParam();
    Rng rng(3);
    SageMeanLayer layer(3, 2, relu, rng);
    SampledBlock block = tinyBlock();
    Rng drng(4);
    Tensor2D h = Tensor2D::uniform(4, 3, 1.0f, drng);

    SageContext ctx;
    Tensor2D out = layer.forward(h, block, ctx);
    SageLayerGrads grads;
    Tensor2D d_in = layer.backward(lossGrad(out), ctx, grads);

    const float eps = 1e-3f;
    auto check_param = [&](Tensor2D &param, const Tensor2D &grad,
                           const char *name) {
        for (std::size_t i = 0; i < param.rows(); ++i) {
            for (std::size_t j = 0; j < param.cols(); ++j) {
                float saved = param.at(i, j);
                SageContext c1, c2;
                param.at(i, j) = saved + eps;
                double lp = lossOf(layer.forward(h, block, c1));
                param.at(i, j) = saved - eps;
                double lm = lossOf(layer.forward(h, block, c2));
                param.at(i, j) = saved;
                double numeric = (lp - lm) / (2 * eps);
                EXPECT_NEAR(grad.at(i, j), numeric, 2e-2)
                    << name << "[" << i << "," << j << "]";
            }
        }
    };
    check_param(layer.mutableWSelf(), grads.w_self, "w_self");
    check_param(layer.mutableWNeigh(), grads.w_neigh, "w_neigh");
    check_param(layer.mutableBias(), grads.bias, "bias");

    // Input gradient.
    for (std::size_t i = 0; i < h.rows(); ++i) {
        for (std::size_t j = 0; j < h.cols(); ++j) {
            float saved = h.at(i, j);
            SageContext c1, c2;
            h.at(i, j) = saved + eps;
            double lp = lossOf(layer.forward(h, block, c1));
            h.at(i, j) = saved - eps;
            double lm = lossOf(layer.forward(h, block, c2));
            h.at(i, j) = saved;
            double numeric = (lp - lm) / (2 * eps);
            EXPECT_NEAR(d_in.at(i, j), numeric, 2e-2)
                << "h[" << i << "," << j << "]";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(LinearAndRelu, SageLayerGradCheck,
                         ::testing::Values(false, true));

TEST(SageLayer, ApplyGradsMovesParameters)
{
    Rng rng(5);
    SageMeanLayer layer(2, 2, false, rng);
    SageLayerGrads g;
    g.w_self = Tensor2D(2, 2);
    g.w_neigh = Tensor2D(2, 2);
    g.bias = Tensor2D(1, 2);
    g.w_self.at(0, 0) = 1.0f;
    float before = layer.wSelf().at(0, 0);
    layer.applyGrads(g, 0.1f);
    EXPECT_FLOAT_EQ(layer.wSelf().at(0, 0), before - 0.1f);
}

TEST(SageLayer, ForwardMacsFormula)
{
    EXPECT_EQ(SageMeanLayer::forwardMacs(10, 4, 8), 2u * 10 * 4 * 8);
}

TEST(SageModel, LayerWidthsChain)
{
    ModelConfig mc;
    mc.in_dim = 12;
    mc.hidden_dim = 7;
    mc.num_classes = 3;
    mc.depth = 3;
    SageModel model(mc);
    ASSERT_EQ(model.layers().size(), 3u);
    EXPECT_EQ(model.layers()[0].inDim(), 12u);
    EXPECT_EQ(model.layers()[0].outDim(), 7u);
    EXPECT_EQ(model.layers()[2].inDim(), 7u);
    EXPECT_EQ(model.layers()[2].outDim(), 3u);
    EXPECT_TRUE(model.layers()[0].hasRelu());
    EXPECT_FALSE(model.layers()[2].hasRelu());
}

TEST(SageModel, ParameterCount)
{
    ModelConfig mc;
    mc.in_dim = 4;
    mc.hidden_dim = 5;
    mc.num_classes = 2;
    mc.depth = 2;
    SageModel model(mc);
    // layer0: 2*4*5 + 5; layer1: 2*5*2 + 2
    EXPECT_EQ(model.parameterCount(), 40u + 5 + 20 + 2);
}

TEST(SageModel, TrainingReducesLoss)
{
    PowerLawParams gp;
    gp.num_nodes = 1024;
    gp.avg_degree = 16;
    CsrGraph g = generatePowerLaw(gp);

    ModelConfig mc;
    mc.in_dim = 16;
    mc.hidden_dim = 24;
    mc.num_classes = 4;
    mc.depth = 2;
    mc.learning_rate = 0.1f;
    SageModel model(mc);
    FeatureTable ft(g.numNodes(), mc.in_dim, mc.num_classes);
    SageSampler sampler({8, 4});
    Rng rng(11);

    double first = 0, avg_late = 0;
    for (int step = 0; step < 40; ++step) {
        auto targets = selectTargets(g, 128, rng);
        Subgraph sg = sampler.sample(g, targets, rng);
        double loss = model.trainStep(sg, ft);
        if (step == 0)
            first = loss;
        if (step >= 35)
            avg_late += loss / 5.0;
    }
    EXPECT_LT(avg_late, first * 0.75);
}

TEST(SageModel, AccuracyBeatsChanceAfterTraining)
{
    PowerLawParams gp;
    gp.num_nodes = 1024;
    gp.avg_degree = 16;
    CsrGraph g = generatePowerLaw(gp);

    ModelConfig mc;
    mc.in_dim = 16;
    mc.hidden_dim = 24;
    mc.num_classes = 4;
    mc.depth = 2;
    mc.learning_rate = 0.1f;
    SageModel model(mc);
    FeatureTable ft(g.numNodes(), mc.in_dim, mc.num_classes);
    SageSampler sampler({8, 4});
    Rng rng(12);

    for (int step = 0; step < 50; ++step) {
        auto targets = selectTargets(g, 128, rng);
        model.trainStep(sampler.sample(g, targets, rng), ft);
    }
    auto targets = selectTargets(g, 512, rng);
    double acc = model.evaluate(sampler.sample(g, targets, rng), ft);
    EXPECT_GT(acc, 0.5); // chance = 0.25
}

TEST(SageModelDeath, DepthMismatchPanics)
{
    PowerLawParams gp;
    gp.num_nodes = 256;
    CsrGraph g = generatePowerLaw(gp);
    ModelConfig mc;
    mc.in_dim = 8;
    mc.depth = 2;
    SageModel model(mc);
    FeatureTable ft(g.numNodes(), 8, mc.num_classes);
    SageSampler sampler({4}); // depth 1 != model depth 2
    Rng rng(13);
    auto targets = selectTargets(g, 8, rng);
    Subgraph sg = sampler.sample(g, targets, rng);
    EXPECT_DEATH(model.trainStep(sg, ft), "depth");
}
