/** @file Parameterized property sweeps over sampled subgraphs: the
 *  structural guarantees every downstream consumer relies on must hold
 *  across batch sizes, fanout shapes, and datasets. */

#include <gtest/gtest.h>

#include <set>

#include "gnn/sampler.hh"
#include "graph/datasets.hh"

using namespace smartsage;
using namespace smartsage::gnn;
using smartsage::sim::Rng;

namespace
{

struct SweepParam
{
    std::size_t batch;
    std::vector<unsigned> fanouts;
};

const graph::CsrGraph &
sweepGraph()
{
    static graph::CsrGraph g =
        graph::datasetSpec(graph::DatasetId::Reddit).buildInMemory();
    return g;
}

} // namespace

class SubgraphSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(SubgraphSweep, InvariantsAndBounds)
{
    auto [batch, fanouts] = GetParam();
    const auto &g = sweepGraph();
    SageSampler sampler(fanouts);
    Rng rng(batch * 7 + fanouts.size());
    auto targets = selectTargets(g, batch, rng);
    Subgraph sg = sampler.sample(g, targets, rng);

    sg.checkInvariants();
    EXPECT_EQ(sg.depth(), fanouts.size());
    EXPECT_EQ(sg.targets().size(), batch);

    // Frontier growth is bounded by the fanout product.
    std::uint64_t bound = batch;
    for (std::size_t h = 0; h < fanouts.size(); ++h) {
        bound += bound * fanouts[h];
        EXPECT_LE(sg.frontiers[h + 1].size(), bound + 1);
    }
    EXPECT_LE(sg.totalSampledEdges(),
              sampler.expectedEdges(batch));
    EXPECT_EQ(sg.numUniqueNodes(), sg.frontiers.back().size());

    // The dense ID list is strictly smaller than block-granular
    // movement of the same trace would be — the ISP premise.
    EXPECT_LT(sg.idListBytes(8),
              (sg.totalSampledEdges() + 1) * 4096);
}

TEST_P(SubgraphSweep, FrontiersContainNoDuplicates)
{
    auto [batch, fanouts] = GetParam();
    const auto &g = sweepGraph();
    SageSampler sampler(fanouts);
    Rng rng(batch * 13 + 1);
    auto targets = selectTargets(g, batch, rng);
    Subgraph sg = sampler.sample(g, targets, rng);

    for (const auto &frontier : sg.frontiers) {
        std::set<graph::LocalNodeId> uniq(frontier.begin(),
                                          frontier.end());
        EXPECT_EQ(uniq.size(), frontier.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SubgraphSweep,
    ::testing::Values(SweepParam{16, {5}}, SweepParam{64, {10, 5}},
                      SweepParam{128, {25, 10}},
                      SweepParam{32, {4, 4, 4}},
                      SweepParam{256, {2, 2}}));

TEST(SubgraphAcrossDatasets, EveryDatasetSamplesCleanly)
{
    SageSampler sampler({10, 5});
    for (auto id : graph::allDatasets()) {
        graph::CsrGraph g = graph::datasetSpec(id).buildInMemory();
        Rng rng(3);
        auto targets = selectTargets(g, 64, rng);
        Subgraph sg = sampler.sample(g, targets, rng);
        sg.checkInvariants();
        EXPECT_GT(sg.totalSampledEdges(), 0u)
            << graph::datasetName(id);
    }
}

TEST(SubgraphAcrossDatasets, DenserGraphsSampleMoreEdges)
{
    // With fanout 25 over hop 1, graphs whose degrees exceed the
    // fanout saturate it; the sparsest dataset (OGBN) must sample
    // fewer edges per batch than the densest (Movielens).
    SageSampler sampler({25});
    auto edges_for = [&](graph::DatasetId id) {
        graph::CsrGraph g = graph::datasetSpec(id).buildInMemory();
        Rng rng(4);
        auto targets = selectTargets(g, 128, rng);
        return sampler.sample(g, targets, rng).totalSampledEdges();
    };
    EXPECT_GT(edges_for(graph::DatasetId::Movielens),
              edges_for(graph::DatasetId::Ogbn100M));
}
