/** @file Tests for GraphSAGE/GraphSAINT samplers and Subgraph structure. */

#include <gtest/gtest.h>

#include <set>

#include "gnn/sampler.hh"
#include "graph/builder.hh"
#include "graph/powerlaw.hh"

using namespace smartsage::gnn;
using namespace smartsage::graph;
using smartsage::sim::Rng;

namespace
{

CsrGraph
testGraph()
{
    PowerLawParams p;
    p.num_nodes = 2048;
    p.avg_degree = 20;
    p.seed = 5;
    return generatePowerLaw(p);
}

/** Counts visitor events and validates sampled edges exist. */
class CheckingVisitor : public SampleVisitor
{
  public:
    explicit CheckingVisitor(const CsrGraph &g) : graph_(g) {}

    void onBatchStart(std::size_t n) override { batch_targets = n; }
    void onOffsetRead(LocalNodeId) override { ++offset_reads; }

    void
    onEdgeEntryRead(LocalNodeId u, std::uint64_t entry) override
    {
        ++entry_reads;
        EXPECT_GE(entry, graph_.edgeOffset(u));
        EXPECT_LT(entry, graph_.edgeOffset(u) + graph_.degree(u));
    }

    void
    onSampled(LocalNodeId u, LocalNodeId v) override
    {
        ++sampled;
        auto nbrs = graph_.neighbors(u);
        EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), v), nbrs.end());
    }

    void onBatchEnd() override { ++batch_ends; }

    const CsrGraph &graph_;
    std::size_t batch_targets = 0;
    std::uint64_t offset_reads = 0, entry_reads = 0, sampled = 0;
    int batch_ends = 0;
};

} // namespace

TEST(SageSampler, RespectsFanouts)
{
    CsrGraph g = testGraph();
    SageSampler sampler({5, 3});
    Rng rng(1);
    auto targets = selectTargets(g, 64, rng);
    Subgraph sg = sampler.sample(g, targets, rng);

    ASSERT_EQ(sg.depth(), 2u);
    EXPECT_EQ(sg.targets().size(), 64u);
    for (std::size_t h = 0; h < 2; ++h) {
        const auto &block = sg.blocks[h];
        unsigned fanout = h == 0 ? 5 : 3;
        for (std::size_t u = 0; u < block.numDsts(); ++u) {
            std::uint32_t cnt = block.offsets[u + 1] - block.offsets[u];
            LocalNodeId node = sg.frontiers[h][u];
            std::uint64_t deg = g.degree(node);
            EXPECT_LE(cnt, fanout);
            if (deg <= fanout)
                EXPECT_EQ(cnt, deg); // whole neighborhood taken
            else
                EXPECT_EQ(cnt, fanout);
        }
    }
}

TEST(SageSampler, SamplesAreDistinctWhenDegreeExceedsFanout)
{
    CsrGraph g = testGraph();
    SageSampler sampler({8});
    Rng rng(2);
    auto targets = selectTargets(g, 128, rng);
    Subgraph sg = sampler.sample(g, targets, rng);
    const auto &block = sg.blocks[0];
    for (std::size_t u = 0; u < block.numDsts(); ++u) {
        std::set<std::uint32_t> uniq(
            block.src_index.begin() + block.offsets[u],
            block.src_index.begin() + block.offsets[u + 1]);
        // Distinct edge slots can map to the same neighbor only via
        // multi-edges; on this generator duplicates are rare, so the
        // distinct-index property must give near-full uniqueness.
        EXPECT_GE(uniq.size(),
                  (block.offsets[u + 1] - block.offsets[u]) * 3 / 4);
    }
}

TEST(SageSampler, SubgraphInvariantsHold)
{
    CsrGraph g = testGraph();
    SageSampler sampler({10, 5});
    Rng rng(3);
    auto targets = selectTargets(g, 32, rng);
    Subgraph sg = sampler.sample(g, targets, rng);
    sg.checkInvariants();
    SUCCEED();
}

TEST(SageSampler, VisitorSeesEveryAccess)
{
    CsrGraph g = testGraph();
    SageSampler sampler({4, 2});
    Rng rng(4);
    auto targets = selectTargets(g, 16, rng);
    CheckingVisitor vis(g);
    Subgraph sg = sampler.sample(g, targets, rng, &vis);

    EXPECT_EQ(vis.batch_targets, 16u);
    EXPECT_EQ(vis.batch_ends, 1);
    // One offset read per frontier node per hop.
    std::uint64_t expected_offsets =
        sg.frontiers[0].size() + sg.frontiers[1].size();
    EXPECT_EQ(vis.offset_reads, expected_offsets);
    EXPECT_EQ(vis.sampled, sg.totalSampledEdges());
    EXPECT_EQ(vis.entry_reads, vis.sampled);
}

TEST(SageSampler, DeterministicGivenRngState)
{
    CsrGraph g = testGraph();
    SageSampler sampler({6, 4});
    Rng r1(9), r2(9);
    auto t1 = selectTargets(g, 32, r1);
    auto t2 = selectTargets(g, 32, r2);
    EXPECT_EQ(t1, t2);
    Subgraph a = sampler.sample(g, t1, r1);
    Subgraph b = sampler.sample(g, t2, r2);
    EXPECT_EQ(a.frontiers, b.frontiers);
    EXPECT_EQ(a.blocks[0].src_index, b.blocks[0].src_index);
}

TEST(SageSampler, FrontiersHaveSelfPrefix)
{
    CsrGraph g = testGraph();
    SageSampler sampler({5, 5});
    Rng rng(6);
    auto targets = selectTargets(g, 16, rng);
    Subgraph sg = sampler.sample(g, targets, rng);
    for (std::size_t h = 0; h + 1 < sg.frontiers.size(); ++h) {
        for (std::size_t i = 0; i < sg.frontiers[h].size(); ++i)
            EXPECT_EQ(sg.frontiers[h + 1][i], sg.frontiers[h][i]);
    }
}

TEST(SageSampler, IsolatedTargetsProduceEmptyLists)
{
    GraphBuilder b(4);
    b.addEdge(0, 1); // nodes 2, 3 isolated
    CsrGraph g = std::move(b).build();
    SageSampler sampler({3});
    Rng rng(7);
    Subgraph sg = sampler.sample(g, {2, 3}, rng);
    EXPECT_EQ(sg.totalSampledEdges(), 0u);
    sg.checkInvariants();
}

TEST(SageSampler, ExpectedEdgesUpperBound)
{
    SageSampler sampler({25, 10});
    // 1024 targets: 1024*25 hop-1 + (1024 + 25600)*10 hop-2.
    EXPECT_EQ(sampler.expectedEdges(1024),
              1024u * 25 + (1024u + 25600u) * 10);
}

TEST(SaintSampler, WalkShape)
{
    CsrGraph g = testGraph();
    SaintSampler sampler(3);
    Rng rng(8);
    auto roots = selectTargets(g, 64, rng);
    Subgraph sg = sampler.sample(g, roots, rng);
    ASSERT_EQ(sg.depth(), 3u);
    sg.checkInvariants();
    // Each step samples at most one neighbor per frontier node.
    for (std::size_t h = 0; h < sg.depth(); ++h) {
        const auto &block = sg.blocks[h];
        for (std::size_t u = 0; u < block.numDsts(); ++u)
            EXPECT_LE(block.offsets[u + 1] - block.offsets[u], 1u);
    }
}

TEST(SaintSampler, VisitorEntryPerStep)
{
    CsrGraph g = testGraph();
    SaintSampler sampler(2);
    Rng rng(9);
    auto roots = selectTargets(g, 32, rng);
    CheckingVisitor vis(g);
    Subgraph sg = sampler.sample(g, roots, rng, &vis);
    EXPECT_EQ(vis.sampled, sg.totalSampledEdges());
}

TEST(SelectTargets, DistinctAndInRange)
{
    CsrGraph g = testGraph();
    Rng rng(10);
    auto targets = selectTargets(g, 256, rng);
    std::set<LocalNodeId> uniq(targets.begin(), targets.end());
    EXPECT_EQ(uniq.size(), 256u);
    for (auto t : targets)
        EXPECT_LT(t, g.numNodes());
}

TEST(SamplerDeath, EmptyFanoutsPanics)
{
    EXPECT_DEATH(SageSampler({}), "fanout");
}

TEST(SamplerDeath, BatchLargerThanGraphPanics)
{
    GraphBuilder b(2);
    b.addEdge(0, 1);
    CsrGraph g = std::move(b).build();
    Rng rng(1);
    EXPECT_DEATH(selectTargets(g, 3, rng), "batch larger");
}
