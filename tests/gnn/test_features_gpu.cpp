/** @file Tests for the feature table and the GPU timing model. */

#include <gtest/gtest.h>

#include "gnn/feature_table.hh"
#include "gnn/gpu_model.hh"
#include "gnn/sampler.hh"
#include "graph/powerlaw.hh"

using namespace smartsage::gnn;
using namespace smartsage::graph;
using smartsage::sim::Rng;
namespace sim = smartsage::sim;

TEST(FeatureTable, GatherShapeAndDeterminism)
{
    FeatureTable ft(100, 8, 4);
    std::vector<LocalNodeId> nodes = {1, 5, 99};
    Tensor2D a, b;
    ft.gather(nodes, a);
    ft.gather(nodes, b);
    EXPECT_EQ(a.rows(), 3u);
    EXPECT_EQ(a.cols(), 8u);
    EXPECT_EQ(a.data(), b.data());
}

TEST(FeatureTable, DifferentNodesDifferentRows)
{
    FeatureTable ft(100, 16, 4);
    std::vector<LocalNodeId> nodes = {1, 2};
    Tensor2D t;
    ft.gather(nodes, t);
    bool any_diff = false;
    for (std::size_t j = 0; j < 16; ++j)
        any_diff |= t.at(0, j) != t.at(1, j);
    EXPECT_TRUE(any_diff);
}

TEST(FeatureTable, LabelsInRangeAndDeterministic)
{
    FeatureTable ft(1000, 4, 7);
    for (LocalNodeId u = 0; u < 1000; ++u) {
        EXPECT_LT(ft.label(u), 7u);
        EXPECT_EQ(ft.label(u), ft.label(u));
    }
}

TEST(FeatureTable, AllClassesRepresented)
{
    FeatureTable ft(2000, 4, 8);
    std::vector<int> seen(8, 0);
    for (LocalNodeId u = 0; u < 2000; ++u)
        ++seen[ft.label(u)];
    for (int c : seen)
        EXPECT_GT(c, 0);
}

TEST(FeatureTable, SameClassRowsCorrelate)
{
    // The centroid mix-in must make same-class features closer than
    // cross-class features on average (otherwise nothing is learnable).
    FeatureTable ft(4000, 32, 4);
    std::vector<std::vector<LocalNodeId>> byClass(4);
    for (LocalNodeId u = 0; u < 4000; ++u)
        byClass[ft.label(u)].push_back(u);

    auto dot = [&](LocalNodeId a, LocalNodeId b) {
        Tensor2D ta, tb;
        std::vector<LocalNodeId> na = {a}, nb = {b};
        ft.gather(na, ta);
        ft.gather(nb, tb);
        double d = 0;
        for (std::size_t j = 0; j < 32; ++j)
            d += double(ta.at(0, j)) * tb.at(0, j);
        return d;
    };

    double same = 0, cross = 0;
    int n = 50;
    for (int i = 0; i < n; ++i) {
        same += dot(byClass[0][i], byClass[0][i + n]);
        cross += dot(byClass[0][i], byClass[1][i]);
    }
    EXPECT_GT(same / n, cross / n + 0.5);
}

TEST(FeatureTable, BytesPerNode)
{
    FeatureTable ft(10, 602, 2);
    EXPECT_EQ(ft.bytesPerNode(), 602u * 4);
}

TEST(FeatureTableDeath, OutOfRangeLabelPanics)
{
    FeatureTable ft(10, 4, 2);
    EXPECT_DEATH(ft.label(10), "out of range");
}

namespace
{

Subgraph
sampleSome(const CsrGraph &g, unsigned batch, Rng &rng)
{
    SageSampler sampler({10, 5});
    auto targets = selectTargets(g, batch, rng);
    return sampler.sample(g, targets, rng);
}

} // namespace

TEST(GpuModel, MoreWorkTakesLonger)
{
    PowerLawParams p;
    p.num_nodes = 4096;
    p.avg_degree = 30;
    CsrGraph g = generatePowerLaw(p);
    Rng rng(1);

    ModelConfig mc;
    mc.in_dim = 32;
    mc.depth = 2;
    GpuConfig gc;
    GpuTimingModel gpu(gc, mc);

    Subgraph small = sampleSome(g, 32, rng);
    Subgraph large = sampleSome(g, 512, rng);
    EXPECT_GT(gpu.batchTime(large), gpu.batchTime(small));
    EXPECT_GT(gpu.forwardMacs(large), gpu.forwardMacs(small));
}

TEST(GpuModel, LaunchOverheadIsFloor)
{
    PowerLawParams p;
    p.num_nodes = 256;
    p.avg_degree = 4;
    CsrGraph g = generatePowerLaw(p);
    Rng rng(2);
    ModelConfig mc;
    mc.in_dim = 4;
    mc.hidden_dim = 4;
    mc.depth = 2;
    GpuConfig gc;
    gc.launch_overhead = sim::us(123);
    GpuTimingModel gpu(gc, mc);
    Subgraph sg = sampleSome(g, 4, rng);
    EXPECT_GE(gpu.batchTime(sg), sim::us(123));
}

TEST(GpuModel, ThroughputScalesInversely)
{
    PowerLawParams p;
    p.num_nodes = 2048;
    p.avg_degree = 20;
    CsrGraph g = generatePowerLaw(p);
    Rng rng(3);
    ModelConfig mc;
    mc.in_dim = 64;
    mc.depth = 2;

    GpuConfig fast;
    fast.effective_tflops = 2.0;
    fast.launch_overhead = 0;
    GpuConfig slow = fast;
    slow.effective_tflops = 1.0;

    Subgraph sg = sampleSome(g, 256, rng);
    sim::Tick tf = GpuTimingModel(fast, mc).batchTime(sg);
    sim::Tick ts = GpuTimingModel(slow, mc).batchTime(sg);
    EXPECT_NEAR(static_cast<double>(ts) / tf, 2.0, 0.01);
}
