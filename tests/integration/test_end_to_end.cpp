/** @file Integration tests: whole-system runs that assert the paper's
 *  qualitative claims hold in the simulator. */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "gnn/model.hh"
#include "gnn/sampler.hh"
#include "pipeline/producer.hh"

using namespace smartsage;
using namespace smartsage::core;

namespace
{

const Workload &
workload()
{
    static Workload wl =
        Workload::make(graph::DatasetId::ProteinPI, false);
    return wl;
}

SystemConfig
config(DesignPoint dp, unsigned workers = 4)
{
    SystemConfig sc;
    sc.design = dp;
    sc.fanouts = {10, 5};
    sc.pipeline.batch_size = 128;
    sc.pipeline.num_batches = 6;
    sc.pipeline.workers = workers;
    return sc;
}

double
samplingThroughput(DesignPoint dp, unsigned workers)
{
    GnnSystem system(config(dp), workload());
    return system.runSamplingOnly(workers, 8).batchesPerSecond();
}

} // namespace

TEST(EndToEnd, StorageTierOrderingHolds)
{
    // The paper's fundamental ordering (Figs 6, 18): DRAM fastest,
    // PMEM close behind, mmap-SSD slowest of the CPU paths.
    double dram = samplingThroughput(DesignPoint::DramOracle, 4);
    double pmem = samplingThroughput(DesignPoint::Pmem, 4);
    double mmap = samplingThroughput(DesignPoint::SsdMmap, 4);
    EXPECT_GT(dram, pmem);
    EXPECT_GT(pmem, mmap);
}

TEST(EndToEnd, DirectIoBeatsMmap)
{
    // SmartSAGE(SW)'s latency-optimized runtime wins (Section VI-A).
    double sw = samplingThroughput(DesignPoint::SmartSageSw, 4);
    double mmap = samplingThroughput(DesignPoint::SsdMmap, 4);
    EXPECT_GT(sw, mmap);
}

TEST(EndToEnd, IspBeatsBothSsdHostPaths)
{
    double hwsw = samplingThroughput(DesignPoint::SmartSageHwSw, 4);
    double sw = samplingThroughput(DesignPoint::SmartSageSw, 4);
    double mmap = samplingThroughput(DesignPoint::SsdMmap, 4);
    EXPECT_GT(hwsw, sw);
    EXPECT_GT(hwsw, mmap);
}

TEST(EndToEnd, IspAdvantageShrinksWithWorkers)
{
    // Fig 17: HW/SW-over-SW speedup declines as workers scale, because
    // the wimpy embedded cores saturate.
    double r1 = samplingThroughput(DesignPoint::SmartSageHwSw, 1) /
                samplingThroughput(DesignPoint::SmartSageSw, 1);
    double r8 = samplingThroughput(DesignPoint::SmartSageHwSw, 8) /
                samplingThroughput(DesignPoint::SmartSageSw, 8);
    EXPECT_GT(r1, r8);
    EXPECT_GT(r1, 1.0);
}

TEST(EndToEnd, IspCutsSsdToHostTraffic)
{
    // The ~20x SSD->DRAM data-movement reduction claim.
    auto bytes_for = [&](DesignPoint dp) {
        GnnSystem system(config(dp), workload());
        system.runSamplingOnly(2, 6);
        return system.ssd()->bytesToHost();
    };
    std::uint64_t mmap_bytes = bytes_for(DesignPoint::SsdMmap);
    std::uint64_t isp_bytes = bytes_for(DesignPoint::SmartSageHwSw);
    EXPECT_GT(mmap_bytes, 5 * isp_bytes);
}

TEST(EndToEnd, GpuIdleWorstOnMmap)
{
    // Fig 7: the mmap design starves the GPU.
    auto idle = [&](DesignPoint dp) {
        GnnSystem system(config(dp, 6), workload());
        return system.runPipeline().gpu_idle_frac;
    };
    double dram_idle = idle(DesignPoint::DramOracle);
    double mmap_idle = idle(DesignPoint::SsdMmap);
    EXPECT_GT(mmap_idle, dram_idle);
    EXPECT_GT(mmap_idle, 0.5);
}

TEST(EndToEnd, PipelineIsDeterministic)
{
    GnnSystem a(config(DesignPoint::SmartSageHwSw), workload());
    GnnSystem b(config(DesignPoint::SmartSageHwSw), workload());
    auto ra = a.runPipeline();
    auto rb = b.runPipeline();
    EXPECT_EQ(ra.makespan, rb.makespan);
    EXPECT_DOUBLE_EQ(ra.gpu_idle_frac, rb.gpu_idle_frac);
}

TEST(EndToEnd, FunctionalResultIndependentOfStorageDesign)
{
    // Whatever the storage path, the produced subgraphs are the same
    // functional objects: training on them must behave identically
    // given identical RNG streams.
    auto subgraph_for = [&](DesignPoint dp) {
        GnnSystem system(config(dp), workload());
        sim::Rng rng(99);
        auto targets = gnn::selectTargets(workload().graph, 64, rng);
        auto job = system.producer().startBatch(targets, rng);
        while (!job->done())
            job->step(0);
        return job->takeSubgraph();
    };
    gnn::Subgraph a = subgraph_for(DesignPoint::DramOracle);
    gnn::Subgraph b = subgraph_for(DesignPoint::SmartSageHwSw);
    EXPECT_EQ(a.frontiers, b.frontiers);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t h = 0; h < a.blocks.size(); ++h)
        EXPECT_EQ(a.blocks[h].src_index, b.blocks[h].src_index);
}

TEST(EndToEnd, TrainingOnProducedSubgraphsLearns)
{
    // Close the loop: subgraphs coming out of the ISP producer train a
    // real model.
    GnnSystem system(config(DesignPoint::SmartSageHwSw), workload());

    gnn::ModelConfig mc;
    mc.in_dim = 16;
    mc.hidden_dim = 16;
    mc.num_classes = 4;
    mc.depth = 2;
    mc.learning_rate = 0.1f;
    gnn::SageModel model(mc);
    gnn::FeatureTable ft(workload().graph.numNodes(), mc.in_dim,
                         mc.num_classes);

    sim::Rng rng(7);
    double first = 0, last = 0;
    for (int i = 0; i < 20; ++i) {
        auto targets = gnn::selectTargets(workload().graph, 128, rng);
        auto job = system.producer().startBatch(targets, rng);
        while (!job->done())
            job->step(0);
        double loss = model.trainStep(job->takeSubgraph(), ft);
        if (i == 0)
            first = loss;
        last = loss;
    }
    EXPECT_LT(last, first);
}
