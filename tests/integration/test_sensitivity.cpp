/** @file Sensitivity-study integration tests mirroring Section VI-F of
 *  the paper, plus stats-report coverage. The batch-size sweep runs as
 *  a declarative scenario through core::ExperimentRunner; the rest
 *  drive GnnSystem directly. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/experiment.hh"
#include "core/scenario.hh"
#include "core/system.hh"

using namespace smartsage;
using namespace smartsage::core;

namespace
{

const Workload &
workload()
{
    static Workload wl =
        Workload::make(graph::DatasetId::Reddit, false);
    return wl;
}

SystemConfig
config(DesignPoint dp)
{
    SystemConfig sc;
    sc.design = dp;
    sc.fanouts = {10, 5};
    sc.pipeline.batch_size = 128;
    return sc;
}

double
speedupOverMmap(const SystemConfig &hwsw_cfg,
                const SystemConfig &mmap_cfg, unsigned workers,
                std::size_t batches)
{
    GnnSystem hwsw(hwsw_cfg, workload());
    GnnSystem mmap(mmap_cfg, workload());
    return hwsw.runSamplingOnly(workers, batches).batchesPerSecond() /
           mmap.runSamplingOnly(workers, batches).batchesPerSecond();
}

} // namespace

TEST(Sensitivity, BatchSizeHasLittleEffectOnSpeedup)
{
    // Section VI-F: "the chosen mini-batch size [has] little effect on
    // SmartSAGE's achieved speedup." Runs the built-in "batch-size"
    // scenario family at test scale through the runner.
    const Scenario *builtin = findScenario("batch-size");
    ASSERT_NE(builtin, nullptr);
    Scenario scenario = smokeVariant(*builtin);
    scenario.num_batches = 8;

    ExperimentRunner runner;
    ScenarioRun run = runner.run(scenario);
    ASSERT_EQ(run.cells.size(), scenario.gridSize());

    auto tput = [&run](DesignPoint dp, std::size_t batch) {
        for (const auto &cell : run.cells)
            if (cell.cell.backend == backendIdOf(dp) &&
                cell.cell.batch_size == batch)
                return cell.metric("batches_per_s");
        return 0.0;
    };
    std::vector<double> speedups;
    for (std::size_t bs : scenario.batch_sizes) {
        double mmap = tput(DesignPoint::SsdMmap, bs);
        ASSERT_GT(mmap, 0.0);
        speedups.push_back(tput(DesignPoint::SmartSageHwSw, bs) / mmap);
    }
    double lo = *std::min_element(speedups.begin(), speedups.end());
    double hi = *std::max_element(speedups.begin(), speedups.end());
    EXPECT_GT(lo, 1.0);           // HW/SW always wins
    EXPECT_LT(hi / lo, 2.0);      // and the win is batch-size stable
}

TEST(Sensitivity, LargerSamplingRateShrinksIspAdvantage)
{
    // Fig 21's trend between the default and 2x sampling rates.
    auto ratio_at = [&](std::vector<unsigned> fanouts) {
        SystemConfig hw = config(DesignPoint::SmartSageHwSw);
        SystemConfig mm = config(DesignPoint::SsdMmap);
        hw.fanouts = fanouts;
        mm.fanouts = fanouts;
        return speedupOverMmap(hw, mm, 4, 8);
    };
    double at_default = ratio_at({10, 5});
    double at_double = ratio_at({20, 10});
    EXPECT_GT(at_default, at_double * 0.95);
}

TEST(Sensitivity, SaintSamplerAlsoBenefitsFromIsp)
{
    // Fig 20's robustness claim under the random-walk sampler.
    SystemConfig hw = config(DesignPoint::SmartSageHwSw);
    SystemConfig mm = config(DesignPoint::SsdMmap);
    hw.use_saint = true;
    hw.saint_walk_length = 3;
    mm.use_saint = true;
    mm.saint_walk_length = 3;
    EXPECT_GT(speedupOverMmap(hw, mm, 4, 8), 1.0);
}

TEST(Sensitivity, CoalescingGranularityMonotonicity)
{
    // Fig 15 trend at the system level: 1024 >= 64 >= 1.
    auto tput_at = [&](std::size_t coalesce) {
        SystemConfig sc = config(DesignPoint::SmartSageHwSw);
        sc.isp.coalesce_targets = coalesce;
        GnnSystem system(sc, workload());
        return system.runSamplingOnly(1, 6).batchesPerSecond();
    };
    double full = tput_at(1024);
    double mid = tput_at(64);
    double fine = tput_at(1);
    EXPECT_GE(full, mid * 0.99);
    EXPECT_GT(mid, fine);
}

TEST(Stats, DumpReportsSsdCountersAfterRun)
{
    GnnSystem system(config(DesignPoint::SmartSageHwSw), workload());
    system.runSamplingOnly(2, 4);
    std::ostringstream os;
    system.dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("ssd.flash.pages_read"), std::string::npos);
    EXPECT_NE(out.find("ssd.page_buffer.hit_rate"), std::string::npos);
    EXPECT_NE(out.find("graph.edges"), std::string::npos);
}

TEST(Stats, DumpReportsHostCountersForMmap)
{
    GnnSystem system(config(DesignPoint::SsdMmap), workload());
    system.runSamplingOnly(2, 4);
    std::ostringstream os;
    system.dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("host.page_cache.hit_rate"), std::string::npos);
    EXPECT_NE(out.find("host.page_faults"), std::string::npos);
}

TEST(Stats, DumpReportsScratchpadForDirectIo)
{
    GnnSystem system(config(DesignPoint::SmartSageSw), workload());
    system.runSamplingOnly(2, 4);
    std::ostringstream os;
    system.dumpStats(os);
    EXPECT_NE(os.str().find("host.direct_io.submits"),
              std::string::npos);
}
