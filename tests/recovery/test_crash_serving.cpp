/** @file Crash-under-load accounting: a serving run killed mid-stream
 *  persists its closing counters (saveServingAccounting), the restarted
 *  run merges them back, and the combined per-tenant books close —
 *  every request accounted once, no double-counting, tenant mismatches
 *  and corrupt blobs rejected. */

#include <gtest/gtest.h>

#include <vector>

#include "core/recovery.hh"
#include "core/serving.hh"
#include "core/system.hh"
#include "core/tenant.hh"
#include "sim/serialize.hh"

using namespace smartsage;
using namespace smartsage::core;
namespace sim = smartsage::sim;

namespace
{

const Workload &
smallWorkload()
{
    static Workload wl = Workload::make(graph::DatasetId::Amazon, false);
    return wl;
}

/** Flash-backed system with an active fault plan: reads fail and
 *  retry, so shed/retry counters are exercised, not just zeros. */
SystemConfig
faultySystem()
{
    SystemConfig sc;
    sc.backend = "ssd-mmap";
    sc.fanouts = {6, 3};
    sc.host.io_queue_depth = 8;
    sc.fault.read_error_rate = 0.2;
    sc.retry.max_attempts = 2;
    return sc;
}

std::vector<TenantClass>
mixedTenants(std::uint64_t interactive_requests,
             std::uint64_t batch_requests)
{
    TenantClass interactive;
    interactive.name = "interactive";
    interactive.arrival_qps = 10000;
    interactive.fanout = 4;
    interactive.slo = sim::us(2000);
    interactive.priority = 10;
    interactive.requests = interactive_requests;

    TenantClass batch;
    batch.name = "batch";
    batch.arrival_qps = 100000;
    batch.fanout = 16;
    batch.requests = batch_requests;
    return {interactive, batch};
}

ServingResult
servePhase(std::uint64_t interactive_requests,
           std::uint64_t batch_requests, std::uint64_t seed)
{
    GnnSystem system(faultySystem(), smallWorkload());
    ServingConfig cfg;
    cfg.seed = seed;
    cfg.tenants = mixedTenants(interactive_requests, batch_requests);
    return runServingLoad(system, cfg);
}

std::uint64_t
shedTotal(const ServingResult &r)
{
    return r.shed_error + r.shed_timeout + r.shed_admission;
}

} // namespace

TEST(CrashServing, AccountingRoundTripsThroughBytes)
{
    const ServingResult phase = servePhase(16, 160, 0x510a11);
    ASSERT_EQ(phase.tenants.size(), 2u);
    EXPECT_GT(phase.io_retries, 0u); // the fault plan actually fired

    const std::vector<std::uint8_t> blob = saveServingAccounting(phase);
    ServingResult restored;
    mergeServingAccounting(blob, restored);

    EXPECT_EQ(restored.requests, phase.requests);
    EXPECT_EQ(restored.completed_ok, phase.completed_ok);
    EXPECT_EQ(restored.shed_error, phase.shed_error);
    EXPECT_EQ(restored.shed_timeout, phase.shed_timeout);
    EXPECT_EQ(restored.shed_admission, phase.shed_admission);
    EXPECT_EQ(restored.io_retries, phase.io_retries);
    EXPECT_EQ(restored.io_timeouts, phase.io_timeouts);
    EXPECT_EQ(restored.io_abandoned, phase.io_abandoned);
    ASSERT_EQ(restored.tenants.size(), phase.tenants.size());
    for (std::size_t i = 0; i < phase.tenants.size(); ++i) {
        EXPECT_EQ(restored.tenants[i].name, phase.tenants[i].name);
        EXPECT_EQ(restored.tenants[i].slo, phase.tenants[i].slo);
        EXPECT_EQ(restored.tenants[i].requests,
                  phase.tenants[i].requests);
        EXPECT_EQ(restored.tenants[i].completed_ok,
                  phase.tenants[i].completed_ok);
        EXPECT_EQ(restored.tenants[i].slo_met,
                  phase.tenants[i].slo_met);
        EXPECT_EQ(restored.tenants[i].shed, phase.tenants[i].shed);
    }
}

TEST(CrashServing, SplitRunBooksCloseWithoutDoubleCounting)
{
    // The crash scenario: phase one serves part of the load, the
    // process dies, a restart serves the remainder and merges the
    // persisted counters of phase one.
    const ServingResult before = servePhase(16, 160, 0x510a11);
    const std::vector<std::uint8_t> blob =
        saveServingAccounting(before);

    ServingResult merged = servePhase(16, 160, 0xc0ffee);
    const ServingResult after = merged; // phase two alone
    mergeServingAccounting(blob, merged);

    // Totals are exactly the sum of the two phases.
    EXPECT_EQ(merged.requests, before.requests + after.requests);
    EXPECT_EQ(merged.completed_ok,
              before.completed_ok + after.completed_ok);
    EXPECT_EQ(shedTotal(merged), shedTotal(before) + shedTotal(after));
    EXPECT_EQ(merged.io_retries, before.io_retries + after.io_retries);

    // The books close globally and per tenant: every request is
    // answered or shed, exactly once.
    EXPECT_EQ(merged.completed_ok + shedTotal(merged), merged.requests);
    ASSERT_EQ(merged.tenants.size(), 2u);
    std::uint64_t tenant_requests = 0;
    for (std::size_t i = 0; i < merged.tenants.size(); ++i) {
        const TenantServingResult &t = merged.tenants[i];
        EXPECT_EQ(t.requests, before.tenants[i].requests +
                                  after.tenants[i].requests);
        EXPECT_EQ(t.completed_ok + t.shed, t.requests) << t.name;
        tenant_requests += t.requests;
    }
    EXPECT_EQ(tenant_requests, merged.requests);

    // Applying the same blob again would double-count: the sums move
    // past the true totals, which is exactly why the contract is
    // merge-exactly-once.
    ServingResult twice = merged;
    mergeServingAccounting(blob, twice);
    EXPECT_EQ(twice.requests, merged.requests + before.requests);
}

TEST(CrashServing, TenantSetMismatchIsRejected)
{
    const ServingResult phase = servePhase(16, 160, 0x510a11);
    const std::vector<std::uint8_t> blob = saveServingAccounting(phase);

    ServingResult other = servePhase(16, 160, 0x510a11);
    other.tenants[1].name = "analytics"; // not the saved tenant set
    EXPECT_THROW(mergeServingAccounting(blob, other),
                 sim::SerializeError);

    ServingResult fewer = servePhase(16, 160, 0x510a11);
    fewer.tenants.pop_back();
    EXPECT_THROW(mergeServingAccounting(blob, fewer),
                 sim::SerializeError);
}

TEST(CrashServing, CorruptBlobsAreRejected)
{
    const ServingResult phase = servePhase(16, 160, 0x510a11);
    const std::vector<std::uint8_t> blob = saveServingAccounting(phase);

    std::vector<std::uint8_t> flipped = blob;
    flipped[flipped.size() / 2] ^= 0x40;
    ServingResult into;
    EXPECT_THROW(mergeServingAccounting(flipped, into),
                 sim::SerializeError);

    std::vector<std::uint8_t> truncated = blob;
    truncated.resize(truncated.size() - 2);
    EXPECT_THROW(mergeServingAccounting(truncated, into),
                 sim::SerializeError);

    EXPECT_THROW(mergeServingAccounting({}, into), sim::SerializeError);
}
