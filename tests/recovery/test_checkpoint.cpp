/** @file Checkpoint store tests (core/checkpoint.hh): snapshot
 *  round-trips, content-addressed chunk dedup, keep_last pruning with
 *  chunk GC, corruption detection, and forward-version gating. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "sim/serialize.hh"

namespace fs = std::filesystem;
using namespace smartsage;
using namespace smartsage::core;

namespace
{

class CheckpointTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("ckpt-test-" + std::to_string(::getpid()) + "-" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
        config_.interval_batches = 1;
        config_.dir = dir_.string();
        config_.chunk_kib = 1; // force multi-chunk sections
    }

    void TearDown() override { fs::remove_all(dir_); }

    Snapshot
    snapshotOf(std::uint64_t step, std::uint8_t fill)
    {
        Snapshot s;
        s.step = step;
        // A prime-period byte pattern keeps the 1 KiB chunks of one
        // section distinct, so intra-snapshot dedup never fires by
        // accident (a 256-period pattern repeats exactly per chunk).
        std::vector<std::uint8_t> model(2600);
        for (std::size_t i = 0; i < model.size(); ++i)
            model[i] = static_cast<std::uint8_t>(fill + i % 251);
        s.sections["model"] = std::move(model);
        s.sections["trainer"] = {fill, 1, 2, 3};
        s.sections["empty"] = {};
        return s;
    }

    std::size_t
    chunkFileCount() const
    {
        std::size_t n = 0;
        for (const auto &entry :
             fs::directory_iterator(dir_ / "chunks"))
            n += entry.is_regular_file();
        return n;
    }

    fs::path dir_;
    CheckpointConfig config_;
};

} // namespace

TEST_F(CheckpointTest, SaveLoadRoundTripsEverySection)
{
    CheckpointManager manager(config_);
    const Snapshot saved = snapshotOf(5, 0x5a);
    manager.save(saved);

    ASSERT_EQ(manager.latestStep(), std::optional<std::uint64_t>(5));
    const Snapshot loaded = manager.load(5);
    EXPECT_EQ(loaded.step, 5u);
    EXPECT_EQ(loaded.sections, saved.sections);
    EXPECT_EQ(manager.stats().saves, 1u);
    EXPECT_EQ(manager.stats().loads, 1u);
    EXPECT_GT(manager.stats().bytes_written, 0u);
}

TEST_F(CheckpointTest, UnchangedChunksDedupAcrossSteps)
{
    CheckpointManager manager(config_);
    manager.save(snapshotOf(1, 0x11));
    const CheckpointStats first = manager.stats();
    EXPECT_EQ(first.chunks_deduped, 0u);

    // Same content at a later step: every chunk is already on disk.
    manager.save(snapshotOf(2, 0x11));
    const CheckpointStats second = manager.stats();
    EXPECT_EQ(second.chunks_written, first.chunks_written);
    EXPECT_EQ(second.bytes_written, first.bytes_written);
    EXPECT_EQ(second.chunks_deduped, first.chunks_written);

    // Both manifests still load in full.
    EXPECT_EQ(manager.load(1).sections, snapshotOf(1, 0x11).sections);
    EXPECT_EQ(manager.load(2).sections, snapshotOf(2, 0x11).sections);
}

TEST_F(CheckpointTest, KeepLastPrunesManifestsAndCollectsChunks)
{
    config_.keep_last = 2;
    CheckpointManager manager(config_);
    manager.save(snapshotOf(1, 0x01));
    manager.save(snapshotOf(2, 0x02));
    const std::size_t chunks_two_live = chunkFileCount();
    manager.save(snapshotOf(3, 0x03));

    // Step 1's manifest is gone and its now-unreferenced chunks were
    // collected: the store never holds more than keep_last states.
    EXPECT_EQ(manager.steps(), (std::vector<std::uint64_t>{2, 3}));
    EXPECT_FALSE(fs::exists(dir_ / "manifest-1.ckpt"));
    EXPECT_EQ(chunkFileCount(), chunks_two_live);
    EXPECT_THROW(manager.load(1), sim::SerializeError);
    EXPECT_EQ(manager.load(3).sections, snapshotOf(3, 0x03).sections);
}

TEST_F(CheckpointTest, CorruptChunkAndManifestAreDetected)
{
    CheckpointManager manager(config_);
    manager.save(snapshotOf(4, 0x44));

    // Flip one byte in some chunk: the per-chunk CRC catches it.
    fs::path victim;
    for (const auto &entry : fs::directory_iterator(dir_ / "chunks"))
        victim = entry.path();
    ASSERT_FALSE(victim.empty());
    {
        std::fstream f(victim, std::ios::in | std::ios::out |
                                   std::ios::binary);
        f.seekp(10);
        f.put('\x7f');
    }
    EXPECT_THROW(manager.load(4), sim::SerializeError);

    // Truncate the manifest: the trailing CRC catches it.
    const fs::path manifest = dir_ / "manifest-4.ckpt";
    fs::resize_file(manifest, fs::file_size(manifest) - 3);
    EXPECT_THROW(readManifest(manifest.string()), sim::SerializeError);
}

TEST_F(CheckpointTest, FutureFormatVersionIsRejected)
{
    CheckpointManager manager(config_);
    manager.save(snapshotOf(9, 0x09));
    const fs::path manifest = dir_ / "manifest-9.ckpt";

    // Re-stamp the version field (offset 8, after the u64 magic) to a
    // future value and re-seal the trailing CRC so only the version
    // check can object.
    std::vector<std::uint8_t> doc = sim::readFile(manifest.string());
    doc[8] = static_cast<std::uint8_t>(kCheckpointFormatVersion + 1);
    const std::size_t body = doc.size() - 4;
    const std::uint32_t crc = sim::crc32(doc.data(), body);
    for (int i = 0; i < 4; ++i)
        doc[body + i] = static_cast<std::uint8_t>(crc >> (8 * i));
    sim::atomicWriteFile(manifest.string(), doc);

    try {
        readManifest(manifest.string());
        FAIL() << "future-version manifest was accepted";
    } catch (const sim::SerializeError &err) {
        EXPECT_NE(std::string(err.what()).find("format version"),
                  std::string::npos);
    }
}

TEST(CheckpointKnobs, ApplyKnobCoversEveryField)
{
    CheckpointConfig config;
    EXPECT_TRUE(applyKnob(config, "interval_batches", 3));
    EXPECT_TRUE(applyKnob(config, "warm_cache", 1));
    EXPECT_TRUE(applyKnob(config, "keep_last", 5));
    EXPECT_TRUE(applyKnob(config, "chunk_kib", 64));
    EXPECT_TRUE(applyKnob(config, "write_gbps", 4.0));
    EXPECT_TRUE(applyKnob(config, "read_gbps", 6.0));
    EXPECT_FALSE(applyKnob(config, "bogus", 1));
    EXPECT_EQ(config.interval_batches, 3u);
    EXPECT_TRUE(config.warm_cache);
    EXPECT_EQ(config.keep_last, 5u);
    EXPECT_EQ(config.chunk_kib, 64u);

    // interval without a directory is inert, not an error: scenario
    // cells set the interval via knobs and the harness fills the dir.
    EXPECT_FALSE(config.enabled());
    config.dir = "/tmp/somewhere";
    EXPECT_TRUE(config.enabled());
}
