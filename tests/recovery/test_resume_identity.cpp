/** @file The headline recovery invariant: a training run suspended at
 *  batch k and resumed from its checkpoint ends bit-identical (model
 *  hash, loss bits, sampled edges) to an uninterrupted run, at any
 *  worker count — and the recovery-space artifact is a pure function
 *  of the scenario, byte-identical across runner worker counts. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/recovery.hh"
#include "core/scenario.hh"
#include "core/system.hh"
#include "gnn/model.hh"

namespace fs = std::filesystem;
using namespace smartsage;
using namespace smartsage::core;

namespace
{

const Workload &
smallWorkload()
{
    static Workload wl = Workload::make(graph::DatasetId::Amazon, false);
    return wl;
}

SystemConfig
trainConfig()
{
    SystemConfig sc;
    sc.backend = "ssd-mmap";
    sc.fanouts = {6, 3};
    sc.pipeline.batch_size = 64;
    return sc;
}

fs::path
scratchDir(const std::string &tag)
{
    fs::path dir = fs::temp_directory_path() /
                   ("resume-test-" + std::to_string(::getpid()) + "-" +
                    tag);
    fs::remove_all(dir);
    return dir;
}

std::uint64_t
lossBits(double loss)
{
    return std::bit_cast<std::uint64_t>(loss);
}

const Scenario &
recoverySpaceScenario()
{
    for (const Scenario &s : extraScenarios()) {
        if (s.family == "recovery-space")
            return s;
    }
    ADD_FAILURE() << "recovery-space family is not registered";
    static Scenario empty;
    return empty;
}

} // namespace

TEST(ResumeIdentity, SuspendResumeMatchesUninterruptedAtAnyWorkers)
{
    const std::size_t total = 6;
    const std::uint64_t kill = 5;

    // Uninterrupted reference (inert checkpoint config), once.
    GnnSystem ref_system(trainConfig(), smallWorkload());
    gnn::SageModel ref_model(checkpointModelConfig(ref_system));
    TrainRunOptions ref_options;
    ref_options.total_batches = total;
    const TrainRunResult ref =
        runCheckpointedTraining(ref_system, ref_model, ref_options);
    EXPECT_FALSE(ref.resumed);
    EXPECT_EQ(ref.end_batch, total);

    for (unsigned workers : {1u, 2u, 4u}) {
        const fs::path dir =
            scratchDir("w" + std::to_string(workers));
        SystemConfig sc = trainConfig();
        sc.ckpt.interval_batches = 2;
        sc.ckpt.dir = dir.string();

        // Phase A: crash while batch `kill` is in flight. Batches
        // [0, 5) completed, checkpoints landed at steps 2 and 4.
        GnnSystem crash_system(sc, smallWorkload());
        gnn::SageModel crash_model(
            checkpointModelConfig(crash_system));
        TrainRunOptions crash_options;
        crash_options.workers = workers;
        crash_options.total_batches = total;
        crash_options.kill_batch = kill;
        const TrainRunResult crashed = runCheckpointedTraining(
            crash_system, crash_model, crash_options);
        EXPECT_FALSE(crashed.resumed);
        EXPECT_EQ(crashed.end_batch, kill);
        EXPECT_EQ(crashed.stats.saves, 2u);

        // Phase B: a fresh process restores the newest manifest and
        // finishes the run. One batch of work was lost to the crash.
        GnnSystem resumed_system(sc, smallWorkload());
        gnn::SageModel resumed_model(
            checkpointModelConfig(resumed_system));
        TrainRunOptions resume_options;
        resume_options.workers = workers;
        resume_options.total_batches = total;
        const TrainRunResult resumed = runCheckpointedTraining(
            resumed_system, resumed_model, resume_options);
        EXPECT_TRUE(resumed.resumed);
        EXPECT_EQ(resumed.start_batch, 4u);
        EXPECT_EQ(resumed.end_batch, total);
        EXPECT_EQ(resumed.stats.loads, 1u);

        // Bit-identity against the uninterrupted reference.
        EXPECT_EQ(resumed_model.stateHash(), ref_model.stateHash())
            << "workers=" << workers;
        EXPECT_EQ(lossBits(resumed.loss_sum), lossBits(ref.loss_sum))
            << "workers=" << workers;
        EXPECT_EQ(resumed.sampled_edges, ref.sampled_edges);

        fs::remove_all(dir);
    }
}

TEST(ResumeIdentity, CrashBeforeFirstCheckpointRestartsFromScratch)
{
    const fs::path dir = scratchDir("cold");
    SystemConfig sc = trainConfig();
    sc.ckpt.interval_batches = 4;
    sc.ckpt.dir = dir.string();

    // Kill at batch 3: no checkpoint is due yet, so nothing survives
    // and the restart re-trains everything — still bit-identical.
    GnnSystem crash_system(sc, smallWorkload());
    gnn::SageModel crash_model(checkpointModelConfig(crash_system));
    TrainRunOptions options;
    options.total_batches = 4;
    options.kill_batch = 3;
    const TrainRunResult crashed =
        runCheckpointedTraining(crash_system, crash_model, options);
    EXPECT_EQ(crashed.stats.saves, 0u);

    GnnSystem resumed_system(sc, smallWorkload());
    gnn::SageModel resumed_model(
        checkpointModelConfig(resumed_system));
    options.kill_batch = 0;
    const TrainRunResult resumed = runCheckpointedTraining(
        resumed_system, resumed_model, options);
    EXPECT_FALSE(resumed.resumed);
    EXPECT_EQ(resumed.start_batch, 0u);
    EXPECT_EQ(resumed.end_batch, 4u);

    GnnSystem ref_system(trainConfig(), smallWorkload());
    gnn::SageModel ref_model(checkpointModelConfig(ref_system));
    TrainRunOptions ref_options;
    ref_options.total_batches = 4;
    const TrainRunResult ref =
        runCheckpointedTraining(ref_system, ref_model, ref_options);
    EXPECT_EQ(resumed_model.stateHash(), ref_model.stateHash());
    EXPECT_EQ(lossBits(resumed.loss_sum), lossBits(ref.loss_sum));
    fs::remove_all(dir);
}

TEST(RecoveryCell, MetricsSeparateCheckpointIntervals)
{
    const Scenario &family = recoverySpaceScenario();
    ASSERT_EQ(family.kind, ExperimentKind::Recovery);

    // One backend is enough to exercise every interval variant.
    Scenario s = family;
    s.backends = {family.backends.front()};

    ExperimentRunner runner;
    ScenarioRun run = runner.run(s);
    ASSERT_EQ(run.cells.size(), family.overrides.size());

    // kill_batch=3 against intervals {1, 2, 4}: the crash loses 0, 1,
    // and 3 batches respectively; the warm variant mirrors interval 2.
    EXPECT_EQ(run.cells[0].cell.knobs.front().label(),
              "ckpt.interval_batches=1");
    EXPECT_EQ(run.cells[0].metric("lost_work_batches"), 0.0);
    EXPECT_EQ(run.cells[1].metric("lost_work_batches"), 1.0);
    EXPECT_EQ(run.cells[2].metric("lost_work_batches"), 3.0);
    EXPECT_EQ(run.cells[3].metric("lost_work_batches"), 1.0);

    for (const CellResult &cell : run.cells) {
        EXPECT_EQ(cell.metric("resume_bit_identical"), 1.0)
            << cell.cell.label();
        EXPECT_GT(cell.metric("recovery_time_us"), 0.0);
    }

    // Tighter checkpointing pays more write overhead but loses less
    // work; the interval-4 cell never checkpoints at all.
    EXPECT_GT(run.cells[0].metric("ckpt_overhead_frac"),
              run.cells[1].metric("ckpt_overhead_frac"));
    EXPECT_EQ(run.cells[2].metric("ckpt_overhead_frac"), 0.0);
    EXPECT_EQ(run.cells[2].metric("checkpoints"), 0.0);
    EXPECT_LT(run.cells[0].metric("recovery_time_us"),
              run.cells[2].metric("recovery_time_us"));
}

TEST(RecoverySpace, ArtifactIsWorkerCountInvariant)
{
    Scenario s = recoverySpaceScenario();
    s.backends = {s.backends.front()};

    ExperimentRunner serial(RunnerOptions{1, false, false});
    ExperimentRunner parallel(RunnerOptions{4, false, false});
    ScenarioRun a = serial.run(s);
    ScenarioRun b = parallel.run(s);

    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        ASSERT_EQ(a.cells[i].metrics.size(), b.cells[i].metrics.size());
        for (std::size_t m = 0; m < a.cells[i].metrics.size(); ++m) {
            EXPECT_EQ(a.cells[i].metrics[m].name,
                      b.cells[i].metrics[m].name);
            EXPECT_EQ(lossBits(a.cells[i].metrics[m].value),
                      lossBits(b.cells[i].metrics[m].value))
                << a.cells[i].cell.label() << " "
                << a.cells[i].metrics[m].name;
        }
    }

    std::ostringstream ja, jb;
    writeDesignSpaceJson(ja, {a}, "recovery_space");
    writeDesignSpaceJson(jb, {b}, "recovery_space");
    EXPECT_EQ(ja.str(), jb.str());
}
