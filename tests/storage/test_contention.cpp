/** @file Property tests of storage-stack contention: scaling with
 *  channels/cores and the throughput effects the ISP design relies on. */

#include <gtest/gtest.h>

#include "ssd/ssd_device.hh"
#include "sim/random.hh"

using namespace smartsage::ssd;
namespace sim = smartsage::sim;

namespace
{

/** Total time for @p n random-page block reads issued back-to-back. */
sim::Tick
serialReadTime(SsdDevice &ssd, unsigned n)
{
    sim::Rng rng(5);
    sim::Tick t = 0;
    for (unsigned i = 0; i < n; ++i) {
        std::uint64_t addr = rng.nextBounded(1u << 28) & ~4095ull;
        t = ssd.readBlocks(t, addr, 4096);
    }
    return t;
}

/** Makespan of @p n reads all issued at tick 0 (open loop). */
sim::Tick
parallelReadTime(SsdDevice &ssd, unsigned n)
{
    sim::Rng rng(5);
    sim::Tick last = 0;
    for (unsigned i = 0; i < n; ++i) {
        std::uint64_t addr = rng.nextBounded(1u << 28) & ~4095ull;
        last = std::max(last, ssd.readBlocks(0, addr, 4096));
    }
    return last;
}

} // namespace

TEST(Contention, OpenLoopBeatsClosedLoop)
{
    SsdConfig cfg;
    cfg.page_buffer_bytes = sim::MiB(1);
    SsdDevice a(cfg), b(cfg);
    // Independent requests overlap inside the device; a blocking
    // caller cannot exploit that.
    EXPECT_LT(parallelReadTime(a, 64), serialReadTime(b, 64));
}

/** Channel-count sweep: more channels, earlier completion. */
class ChannelScaling : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ChannelScaling, MoreChannelsNeverSlower)
{
    unsigned channels = GetParam();
    SsdConfig narrow;
    narrow.flash.channels = channels;
    narrow.page_buffer_bytes = sim::MiB(1);
    SsdConfig wide = narrow;
    wide.flash.channels = channels * 2;

    SsdDevice a(narrow), b(wide);
    sim::Tick t_narrow = parallelReadTime(a, 128);
    sim::Tick t_wide = parallelReadTime(b, 128);
    EXPECT_LE(t_wide, t_narrow);
}

INSTANTIATE_TEST_SUITE_P(Channels, ChannelScaling,
                         ::testing::Values(1, 2, 4, 8));

TEST(Contention, MoreEmbeddedCoresRaiseCommandThroughput)
{
    SsdConfig two;
    two.embedded_cores = 2;
    two.page_buffer_bytes = sim::MiB(64); // all hits: isolate the cores
    SsdConfig four = two;
    four.embedded_cores = 4;

    SsdDevice a(two), b(four);
    // Warm the page buffer so only command handling remains.
    a.readBlocks(0, 0, 4096);
    b.readBlocks(0, 0, 4096);
    sim::Tick last_a = 0, last_b = 0;
    for (int i = 0; i < 32; ++i) {
        last_a = std::max(last_a, a.readBlocks(sim::ms(1), 0, 4096));
        last_b = std::max(last_b, b.readBlocks(sim::ms(1), 0, 4096));
    }
    EXPECT_LT(last_b, last_a);
}

TEST(Contention, FirmwareDutyCycleSlowsEverything)
{
    SsdConfig light;
    light.firmware_duty = 0.0;
    light.page_buffer_bytes = sim::MiB(1);
    SsdConfig heavy = light;
    heavy.firmware_duty = 0.6;

    SsdDevice a(light), b(heavy);
    EXPECT_LT(serialReadTime(a, 32), serialReadTime(b, 32));
}

TEST(Contention, BiggerPageBufferCutsFlashReads)
{
    SsdConfig small_buf;
    small_buf.page_buffer_bytes = sim::KiB(512);
    SsdConfig big_buf = small_buf;
    big_buf.page_buffer_bytes = sim::MiB(64);

    SsdDevice a(small_buf), b(big_buf);
    // Two passes over the same 8 MiB region: the big buffer retains it.
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t addr = 0; addr < sim::MiB(8);
             addr += sim::KiB(16)) {
            a.readBlocks(0, addr, 4096);
            b.readBlocks(0, addr, 4096);
        }
    }
    EXPECT_GT(a.flashArray().pagesRead(), b.flashArray().pagesRead());
    EXPECT_GT(b.pageBuffer().hitRate(), a.pageBuffer().hitRate());
}

TEST(Contention, PcieSerializesLargeTransfers)
{
    SsdConfig cfg;
    SsdDevice ssd(cfg);
    sim::Tick first = ssd.dmaToHost(0, sim::MiB(4));
    sim::Tick second = ssd.dmaToHost(0, sim::MiB(4));
    // Second transfer queues behind the first on the wire.
    EXPECT_GE(second, 2 * (first - cfg.pcie_latency));
}
