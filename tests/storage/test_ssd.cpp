/** @file Tests for FTL, page buffer, embedded cores, and SsdDevice. */

#include <gtest/gtest.h>

#include <set>

#include "ssd/ssd_device.hh"

using namespace smartsage::ssd;
namespace sim = smartsage::sim;

namespace
{

SsdConfig
smallConfig()
{
    SsdConfig c;
    c.flash.channels = 2;
    c.flash.dies_per_channel = 2;
    c.page_buffer_bytes = sim::MiB(1);
    return c;
}

} // namespace

TEST(Ftl, PageOfUsesFlashPageSize)
{
    SsdConfig c = smallConfig();
    Ftl ftl(c);
    EXPECT_EQ(ftl.pageOf(0), 0u);
    EXPECT_EQ(ftl.pageOf(c.flash.page_bytes - 1), 0u);
    EXPECT_EQ(ftl.pageOf(c.flash.page_bytes), 1u);
}

TEST(Ftl, StripingCoversAllDies)
{
    SsdConfig c = smallConfig();
    Ftl ftl(c);
    std::set<std::pair<unsigned, unsigned>> seen;
    for (std::uint64_t lpn = 0; lpn < 4; ++lpn) {
        auto addr = ftl.translate(lpn);
        seen.insert({addr.channel, addr.die});
    }
    EXPECT_EQ(seen.size(), 4u); // 2 channels x 2 dies all hit
}

TEST(Ftl, TranslationIsInjective)
{
    SsdConfig c = smallConfig();
    Ftl ftl(c);
    std::set<std::tuple<unsigned, unsigned, std::uint64_t>> seen;
    for (std::uint64_t lpn = 0; lpn < 1000; ++lpn) {
        auto a = ftl.translate(lpn);
        EXPECT_TRUE(seen.insert({a.channel, a.die, a.page}).second);
    }
}

TEST(Ftl, PagesSpannedCoversRange)
{
    SsdConfig c = smallConfig();
    Ftl ftl(c);
    std::uint64_t pb = c.flash.page_bytes;
    EXPECT_EQ(ftl.pagesSpanned(0, 1).size(), 1u);
    EXPECT_EQ(ftl.pagesSpanned(pb - 1, 2).size(), 2u);
    EXPECT_EQ(ftl.pagesSpanned(0, 3 * pb).size(), 3u);
    EXPECT_TRUE(ftl.pagesSpanned(0, 0).empty());
}

TEST(PageBuffer, HitAfterInsert)
{
    PageBuffer buf(sim::MiB(1), sim::KiB(16), 4);
    EXPECT_FALSE(buf.access(7));
    EXPECT_TRUE(buf.access(7));
    EXPECT_DOUBLE_EQ(buf.hitRate(), 0.5);
}

TEST(PageBuffer, EvictsUnderPressure)
{
    PageBuffer buf(sim::KiB(64), sim::KiB(16), 4); // 4 pages total
    for (std::uint64_t p = 0; p < 64; ++p)
        buf.access(p);
    std::uint64_t hits = 0;
    for (std::uint64_t p = 0; p < 64; ++p) {
        if (buf.lookup(p))
            ++hits;
    }
    EXPECT_LE(hits, 4u);
}

TEST(EmbeddedCores, DutyCycleInflatesWork)
{
    SsdConfig c = smallConfig();
    c.firmware_duty = 0.5;
    EmbeddedCores cores(c);
    EXPECT_DOUBLE_EQ(cores.inflation(), 2.0);
    auto iv = cores.execute(0, sim::us(10));
    EXPECT_EQ(iv.finish, sim::us(20));
}

TEST(EmbeddedCores, DedicatedIspHasNoInflation)
{
    SsdConfig c = smallConfig();
    EmbeddedCores cores(c, true);
    EXPECT_DOUBLE_EQ(cores.inflation(), 1.0);
}

TEST(EmbeddedCores, PoolParallelism)
{
    SsdConfig c = smallConfig();
    c.embedded_cores = 2;
    c.firmware_duty = 0.0;
    EmbeddedCores cores(c);
    auto a = cores.execute(0, sim::us(10));
    auto b = cores.execute(0, sim::us(10));
    auto third = cores.execute(0, sim::us(10));
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(b.start, 0u);
    EXPECT_EQ(third.start, sim::us(10)); // queues behind one of them
}

TEST(SsdDevice, FetchPageHitIsCheap)
{
    SsdDevice ssd(smallConfig());
    sim::Tick miss = ssd.fetchPage(0, 42);
    sim::Tick hit = ssd.fetchPage(miss, 42) - miss;
    EXPECT_EQ(hit, smallConfig().page_buffer_hit);
    EXPECT_GT(miss, hit * 10);
}

TEST(SsdDevice, ReadBlocksRoundsToBlockSize)
{
    SsdDevice ssd(smallConfig());
    ssd.readBlocks(0, 10, 1); // 1 byte -> one 4 KiB block
    EXPECT_EQ(ssd.bytesToHost(), smallConfig().block_bytes);
    ssd.readBlocks(0, smallConfig().block_bytes - 1, 2); // straddles
    EXPECT_EQ(ssd.bytesToHost(), 3 * smallConfig().block_bytes);
}

TEST(SsdDevice, LargerReadsTakeLonger)
{
    SsdDevice a(smallConfig()), b(smallConfig());
    sim::Tick small = a.readBlocks(0, 0, sim::KiB(4));
    sim::Tick large = b.readBlocks(0, 0, sim::KiB(256));
    EXPECT_GT(large, small);
}

TEST(SsdDevice, CountsHostReads)
{
    SsdDevice ssd(smallConfig());
    ssd.readBlocks(0, 0, 100);
    ssd.readBlocks(0, 1 << 20, 100);
    EXPECT_EQ(ssd.hostReads(), 2u);
}

TEST(SsdDevice, ResetRestoresColdTimeline)
{
    SsdDevice ssd(smallConfig());
    sim::Tick first = ssd.readBlocks(0, 0, 4096);
    ssd.reset();
    sim::Tick again = ssd.readBlocks(0, 0, 4096);
    EXPECT_EQ(first, again);
    EXPECT_EQ(ssd.hostReads(), 1u);
}

TEST(SsdDevice, DmaCostScalesWithBytes)
{
    SsdDevice ssd(smallConfig());
    sim::Tick small = ssd.dmaToHost(0, 4096);
    ssd.reset();
    sim::Tick large = ssd.dmaToHost(0, 1 << 20);
    EXPECT_GT(large, small);
}

TEST(SsdDeviceDeath, ZeroLengthReadPanics)
{
    SsdDevice ssd(smallConfig());
    EXPECT_DEATH(ssd.readBlocks(0, 0, 0), "zero-length");
}
