/** @file Tests for the NAND flash array timing model. */

#include <gtest/gtest.h>

#include "flash/flash_array.hh"

using namespace smartsage::flash;
namespace sim = smartsage::sim;

namespace
{

FlashConfig
smallConfig()
{
    FlashConfig c;
    c.channels = 2;
    c.dies_per_channel = 2;
    c.page_bytes = sim::KiB(16);
    c.read_latency = sim::us(50);
    c.channel_gbps = 1.6; // 16 KiB in ~10.24 us
    return c;
}

} // namespace

TEST(Flash, SinglePageReadLatency)
{
    FlashArray arr(smallConfig());
    sim::Tick done = arr.readPage({0, 0, 0}, 0);
    EXPECT_EQ(done, sim::us(50) + smallConfig().pageTransferTime());
}

TEST(Flash, DistinctDiesOverlap)
{
    FlashArray arr(smallConfig());
    sim::Tick a = arr.readPage({0, 0, 0}, 0);
    sim::Tick b = arr.readPage({1, 0, 1}, 0); // other channel+die
    // Fully parallel: both complete at single-read latency.
    EXPECT_EQ(a, b);
}

TEST(Flash, SameDieSerializesOnTr)
{
    FlashArray arr(smallConfig());
    sim::Tick a = arr.readPage({0, 0, 0}, 0);
    sim::Tick b = arr.readPage({0, 0, 1}, 0);
    EXPECT_GE(b, a + sim::us(50) - smallConfig().pageTransferTime());
    EXPECT_GT(b, a);
}

TEST(Flash, SameChannelSerializesOnTransfer)
{
    FlashArray arr(smallConfig());
    // Two dies of channel 0: tR overlaps, channel transfers serialize.
    sim::Tick a = arr.readPage({0, 0, 0}, 0);
    sim::Tick b = arr.readPage({0, 1, 0}, 0);
    EXPECT_EQ(b, a + smallConfig().pageTransferTime());
}

TEST(Flash, CountsPages)
{
    FlashArray arr(smallConfig());
    arr.readPage({0, 0, 0}, 0);
    arr.readPage({1, 1, 0}, 0);
    EXPECT_EQ(arr.pagesRead(), 2u);
}

TEST(Flash, UtilizationTracksBusyTime)
{
    FlashArray arr(smallConfig());
    arr.readPage({0, 0, 0}, 0);
    // One of 4 dies busy for 50us over a 50us horizon -> 25%.
    EXPECT_NEAR(arr.dieUtilization(sim::us(50)), 0.25, 1e-6);
    EXPECT_GT(arr.channelUtilization(sim::us(50)), 0.0);
}

TEST(Flash, ResetClearsTimeline)
{
    FlashArray arr(smallConfig());
    arr.readPage({0, 0, 0}, 0);
    arr.reset();
    EXPECT_EQ(arr.pagesRead(), 0u);
    sim::Tick done = arr.readPage({0, 0, 0}, 0);
    EXPECT_EQ(done, sim::us(50) + smallConfig().pageTransferTime());
}

TEST(FlashDeath, BadChannelPanics)
{
    FlashArray arr(smallConfig());
    EXPECT_DEATH(arr.readPage({9, 0, 0}, 0), "out of range");
}

/** Property: N pages over D dies finish no later than serial / min(N,D)
 *  plus transfer serialization. */
class FlashParallelism : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FlashParallelism, ScalesAcrossDies)
{
    unsigned pages = GetParam();
    FlashConfig c = smallConfig();
    FlashArray arr(c);
    sim::Tick last = 0;
    for (unsigned i = 0; i < pages; ++i) {
        PageAddress addr{i % c.channels,
                         (i / c.channels) % c.dies_per_channel, i};
        last = std::max(last, arr.readPage(addr, 0));
    }
    sim::Tick serial =
        pages * (c.read_latency + c.pageTransferTime());
    // Parallelism must beat serial for page counts above die count.
    if (pages > c.totalDies())
        EXPECT_LT(last, serial);
    // ...but can't beat the per-die bound.
    sim::Tick bound = (pages / c.totalDies()) * c.read_latency;
    EXPECT_GE(last, bound);
}

INSTANTIATE_TEST_SUITE_P(PageCounts, FlashParallelism,
                         ::testing::Values(2, 8, 64, 256));
