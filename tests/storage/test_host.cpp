/** @file Tests for the host-side LLC model and the four I/O paths. */

#include <gtest/gtest.h>

#include "host/io_path.hh"
#include "host/llc.hh"
#include "sim/random.hh"

using namespace smartsage::host;
namespace sim = smartsage::sim;

namespace
{

HostConfig
testHost()
{
    HostConfig c;
    c.llc_bytes = sim::KiB(64); // small so misses are easy to force
    c.page_cache_bytes = sim::KiB(256);
    c.scratchpad_bytes = sim::KiB(256);
    return c;
}

smartsage::ssd::SsdConfig
testSsd()
{
    smartsage::ssd::SsdConfig c;
    c.page_buffer_bytes = sim::MiB(1);
    return c;
}

} // namespace

TEST(Llc, SequentialStreamMostlyHits)
{
    LlcModel llc(testHost());
    for (std::uint64_t a = 0; a < sim::KiB(16); a += 8)
        llc.access(a, 8);
    // 8 B strides in 64 B lines: 1 miss per 8 accesses.
    EXPECT_NEAR(llc.missRate(), 0.125, 0.01);
}

TEST(Llc, RandomStreamMostlyMisses)
{
    LlcModel llc(testHost());
    sim::Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        llc.access(rng.next() % (1ull << 30), 8);
    EXPECT_GT(llc.missRate(), 0.9);
}

TEST(Llc, MissCostsDramLatency)
{
    HostConfig c = testHost();
    LlcModel llc(c);
    EXPECT_EQ(llc.access(0, 8), c.dram_latency);
    EXPECT_EQ(llc.access(0, 8), c.llc_hit);
}

TEST(Llc, DramBytesCountLineFills)
{
    HostConfig c = testHost();
    LlcModel llc(c);
    llc.access(0, 8);
    llc.access(0, 8); // hit
    EXPECT_EQ(llc.dramBytes(), c.llc_line);
}

TEST(Llc, BwUtilizationScalesWithWorkers)
{
    LlcModel llc(testHost());
    sim::Rng rng(2);
    for (int i = 0; i < 5000; ++i)
        llc.access(rng.next() % (1ull << 30), 8);
    double one = llc.dramBwUtilization(1);
    double twelve = llc.dramBwUtilization(12);
    EXPECT_GT(one, 0.0);
    EXPECT_LE(twelve, 1.0);
    EXPECT_GT(twelve, one);
}

TEST(DramStore, ReadAdvancesByAccessLatency)
{
    HostConfig c = testHost();
    DramEdgeStore store(c);
    sim::Tick t = store.read(100, 0, 8);
    EXPECT_EQ(t, 100 + c.dram_latency); // cold miss
    t = store.read(t, 0, 8);
    EXPECT_EQ(t, 100 + c.dram_latency + c.llc_hit);
}

TEST(MmapStore, FaultThenResidentHit)
{
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd(testSsd());
    MmapEdgeStore store(c, ssd);

    sim::Tick miss_done = store.read(0, 0, 8);
    EXPECT_GT(miss_done, c.page_fault_cost); // went to the device
    EXPECT_EQ(store.pageFaults(), 1u);

    sim::Tick hit_done = store.read(miss_done, 4, 8) - miss_done;
    EXPECT_EQ(hit_done, c.page_cache_hit);
    EXPECT_EQ(store.pageFaults(), 1u);
}

TEST(MmapStore, CrossPageReadFaultsTwice)
{
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd(testSsd());
    MmapEdgeStore store(c, ssd);
    store.read(0, c.os_page_bytes - 4, 8); // straddles two pages
    EXPECT_EQ(store.pageFaults(), 2u);
}

TEST(DirectIoStore, GatherCoalescesIntoOneSubmit)
{
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd(testSsd());
    DirectIoEdgeStore store(c, ssd);

    // Entries scattered over 4 blocks of one node chunk.
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 4; ++i)
        addrs.push_back(i * c.os_page_bytes + 16);
    store.readGather(0, addrs, 8);
    EXPECT_EQ(store.submits(), 1u);
}

TEST(DirectIoStore, GatherBeatsMmapOnMultiBlockNodes)
{
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd_m(testSsd()), ssd_d(testSsd());
    MmapEdgeStore mm(c, ssd_m);
    DirectIoEdgeStore dio(c, ssd_d);

    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 8; ++i)
        addrs.push_back(i * c.os_page_bytes);

    sim::Tick t_mm = mm.readGather(0, addrs, 8);
    sim::Tick t_dio = dio.readGather(0, addrs, 8);
    EXPECT_LT(t_dio, t_mm);
}

TEST(DirectIoStore, ScratchpadHitsAreCheap)
{
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd(testSsd());
    DirectIoEdgeStore store(c, ssd);
    std::vector<std::uint64_t> addrs = {64};
    sim::Tick warm = store.readGather(0, addrs, 8);
    sim::Tick hit = store.readGather(warm, addrs, 8);
    EXPECT_EQ(hit - warm, c.scratchpad_hit);
}

TEST(PmemStore, PerChunkLatency)
{
    HostConfig c = testHost();
    PmemEdgeStore store(c);
    // Within one 256 B chunk.
    EXPECT_EQ(store.read(0, 0, 8), c.pmem_latency);
    // Straddling two chunks.
    EXPECT_EQ(store.read(0, c.pmem_access_bytes - 4, 8),
              2 * c.pmem_latency);
}

TEST(PmemStore, NoCachingEffect)
{
    HostConfig c = testHost();
    PmemEdgeStore store(c);
    sim::Tick first = store.read(0, 0, 8);
    sim::Tick second = store.read(first, 0, 8) - first;
    EXPECT_EQ(second, c.pmem_latency); // same cost every time
}

TEST(Stores, DefaultGatherMatchesSerialReads)
{
    HostConfig c = testHost();
    PmemEdgeStore a(c), b(c);
    std::vector<std::uint64_t> addrs = {0, 1000, 2000};
    sim::Tick gathered = a.readGather(0, addrs, 8);
    sim::Tick serial = 0;
    for (auto addr : addrs)
        serial = b.read(serial, addr, 8);
    EXPECT_EQ(gathered, serial);
}

TEST(DirectIoStore, GatherWithEmptyAddressListIsFree)
{
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd(testSsd());
    DirectIoEdgeStore store(c, ssd);
    std::vector<std::uint64_t> none;
    EXPECT_EQ(store.readGather(1234, none, 8), 1234u);
    EXPECT_EQ(store.submits(), 0u);
    EXPECT_EQ(ssd.hostReads(), 0u);
    // The empty gather never occupied a host-I/O queue slot.
    EXPECT_EQ(store.ioChannel().submitted(), 0u);
}

TEST(DirectIoStore, GatherDeduplicatesRepeatedAddresses)
{
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd_dup(testSsd()), ssd_one(testSsd());
    DirectIoEdgeStore dup(c, ssd_dup);
    DirectIoEdgeStore one(c, ssd_one);

    // Eight copies of the same entry vs a single copy: one block read
    // either way, and the same completion tick.
    std::vector<std::uint64_t> repeated(8, 4096 + 16);
    std::vector<std::uint64_t> single = {4096 + 16};
    sim::Tick t_dup = dup.readGather(0, repeated, 8);
    sim::Tick t_one = one.readGather(0, single, 8);
    EXPECT_EQ(t_dup, t_one);
    EXPECT_EQ(dup.submits(), 1u);
    EXPECT_EQ(ssd_dup.hostReads(), ssd_one.hostReads());
    EXPECT_EQ(ssd_dup.bytesToHost(), c.os_page_bytes);
}

TEST(DirectIoStore, GatherEntryStraddlingABlockBoundaryFetchesBoth)
{
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd(testSsd());
    DirectIoEdgeStore store(c, ssd);

    // One 8 B entry whose bytes span the block boundary: both blocks
    // are missing, contiguous, and ride one coalesced command.
    std::vector<std::uint64_t> addrs = {c.os_page_bytes - 4};
    store.readGather(0, addrs, 8);
    EXPECT_EQ(store.submits(), 1u);
    EXPECT_EQ(ssd.hostReads(), 1u); // contiguous run, one command
    EXPECT_EQ(ssd.bytesToHost(), 2 * c.os_page_bytes);
}

TEST(DirectIoStore, StraddlingEntryCostsNoMoreThanTwoResidentBlocks)
{
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd(testSsd());
    DirectIoEdgeStore store(c, ssd);

    std::vector<std::uint64_t> straddle = {c.os_page_bytes - 4};
    sim::Tick cold = store.readGather(0, straddle, 8);
    // Warm repeat: both blocks now sit in the scratchpad.
    sim::Tick warm = store.readGather(cold, straddle, 8) - cold;
    EXPECT_EQ(warm, c.scratchpad_hit);
    EXPECT_EQ(store.submits(), 1u);
}

TEST(DirectIoStore, GatherMixingDuplicatesHitsAndStraddles)
{
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd(testSsd());
    DirectIoEdgeStore store(c, ssd);

    // Warm block 0 so the mixed gather sees a hit, a duplicate pair,
    // and a boundary straddle at once.
    std::vector<std::uint64_t> warmup = {0};
    sim::Tick t = store.readGather(0, warmup, 8);

    std::vector<std::uint64_t> mixed = {
        16,                     // scratchpad hit in block 0
        2 * c.os_page_bytes,    // miss
        2 * c.os_page_bytes,    // duplicate of the miss
        3 * c.os_page_bytes - 4 // straddles blocks 2 and 3
    };
    sim::Tick done = store.readGather(t, mixed, 8);
    EXPECT_GT(done, t);
    // Blocks 2 and 3 are one contiguous missing run: one command.
    EXPECT_EQ(store.submits(), 2u);
    EXPECT_EQ(ssd.hostReads(), 2u);
    EXPECT_EQ(ssd.bytesToHost(), 3 * c.os_page_bytes);
}

TEST(Stores, AsyncSubmissionMatchesBlockingAdapter)
{
    // For every store flavor: a lone async gather submitted at tick T
    // completes exactly when the blocking adapter says it does.
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd_a(testSsd()), ssd_b(testSsd());
    DirectIoEdgeStore blocking(c, ssd_a);
    DirectIoEdgeStore async(c, ssd_b);

    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 6; ++i)
        addrs.push_back(i * c.os_page_bytes + 8);

    sim::Tick t_blocking = blocking.readGather(777, addrs, 8);

    smartsage::sim::EventQueue eq;
    sim::Tick t_async = 0;
    eq.schedule(777, [&] {
        async.submitGather(eq, addrs, 8,
                           [&](sim::Tick f, sim::IoStatus) { t_async = f; });
    });
    eq.run();
    EXPECT_EQ(t_async, t_blocking);
}

TEST(Stores, ConcurrentGathersQueueAtTheHostChannel)
{
    // Sixteen same-tick cold gathers through a depth-2 host channel:
    // every gather completes, the channel bound is respected, and
    // later arrivals record queueing delay — the contention signal the
    // serving harness measures.
    HostConfig c = testHost();
    c.io_queue_depth = 2;
    smartsage::ssd::SsdDevice ssd(testSsd());
    DirectIoEdgeStore store(c, ssd);

    std::vector<std::vector<std::uint64_t>> gathers;
    for (int g = 0; g < 16; ++g)
        gathers.push_back({static_cast<std::uint64_t>(g) *
                           sim::KiB(256)});

    smartsage::sim::EventQueue eq;
    int completions = 0;
    eq.schedule(0, [&] {
        for (const auto &addrs : gathers)
            store.submitGather(eq, addrs, 8,
                               [&](sim::Tick, sim::IoStatus) { ++completions; });
    });
    eq.run();
    EXPECT_EQ(completions, 16);
    EXPECT_EQ(store.ioChannel().completed(), 16u);
    EXPECT_GT(store.ioChannel().totalQueueWait(), 0u);
    EXPECT_EQ(store.ioChannel().peakOutstanding(), 16u);
}

TEST(Stores, LatencyOrderingAcrossTiers)
{
    // DRAM < PMEM < direct I/O < mmap for one cold 8 B read.
    HostConfig c = testHost();
    smartsage::ssd::SsdDevice ssd_m(testSsd()), ssd_d(testSsd());
    DramEdgeStore dram(c);
    PmemEdgeStore pmem(c);
    MmapEdgeStore mm(c, ssd_m);
    DirectIoEdgeStore dio(c, ssd_d);

    sim::Tick t_dram = dram.read(0, 0, 8);
    sim::Tick t_pmem = pmem.read(0, 0, 8);
    sim::Tick t_mm = mm.read(0, 0, 8);
    std::vector<std::uint64_t> one = {0};
    sim::Tick t_dio = dio.readGather(0, one, 8);

    EXPECT_LT(t_dram, t_pmem);
    EXPECT_LT(t_pmem, t_dio);
    EXPECT_LT(t_dio, t_mm);
}
