/** @file Tests for NSconfig tracing, the ISP engine, and the FPGA CSD. */

#include <gtest/gtest.h>

#include "gnn/sampler.hh"
#include "graph/powerlaw.hh"
#include "isp/fpga_csd.hh"
#include "isp/isp_engine.hh"

using namespace smartsage;
using namespace smartsage::isp;
namespace sim = smartsage::sim;

namespace
{

graph::CsrGraph
testGraph()
{
    graph::PowerLawParams p;
    p.num_nodes = 4096;
    p.avg_degree = 40;
    p.seed = 17;
    return graph::generatePowerLaw(p);
}

IspTraceVisitor
traceBatch(const graph::CsrGraph &g, std::size_t batch,
           std::uint64_t seed = 3)
{
    gnn::SageSampler sampler({10, 5});
    sim::Rng rng(seed);
    auto targets = gnn::selectTargets(g, batch, rng);
    IspTraceVisitor trace;
    sampler.sample(g, targets, rng, &trace);
    return trace;
}

ssd::SsdConfig
testSsd()
{
    ssd::SsdConfig c;
    c.page_buffer_bytes = sim::MiB(1);
    return c;
}

} // namespace

TEST(NsConfig, FormatSizing)
{
    NsConfigFormat f;
    EXPECT_EQ(f.bytesFor(0), f.header_bytes);
    EXPECT_EQ(f.bytesFor(10),
              f.header_bytes + 10 * f.per_target_bytes);
}

TEST(NsConfig, TraceCapturesAllWork)
{
    graph::CsrGraph g = testGraph();
    IspTraceVisitor trace = traceBatch(g, 64);
    EXPECT_EQ(trace.numTargets(), 64u);
    EXPECT_FALSE(trace.work().empty());
    // Entries are attributed to the node that read them.
    for (const auto &w : trace.work()) {
        for (std::uint64_t e : w.entries) {
            EXPECT_GE(e, g.edgeOffset(w.node));
            EXPECT_LT(e, g.edgeOffset(w.node) + g.degree(w.node));
        }
    }
}

TEST(NsConfig, TotalEntriesMatchesSum)
{
    graph::CsrGraph g = testGraph();
    IspTraceVisitor trace = traceBatch(g, 32);
    std::uint64_t sum = 0;
    for (const auto &w : trace.work())
        sum += w.entries.size();
    EXPECT_EQ(trace.totalEntries(), sum);
}

TEST(IspEngine, RunBatchProducesConsistentResult)
{
    graph::CsrGraph g = testGraph();
    ssd::SsdDevice ssd(testSsd());
    graph::EdgeLayout layout;
    IspConfig ic;
    IspEngine engine(ic, ssd, layout);

    IspTraceVisitor trace = traceBatch(g, 64);
    IspBatchResult r = engine.runBatch(trace, 1000);

    EXPECT_GT(r.finish, 1000u);
    EXPECT_EQ(r.commands, 1u); // 64 targets < 1024 coalesce
    EXPECT_GT(r.flash_pages, 0u);
    // Dense ID list: entries + per-node headers, 8 B each.
    EXPECT_EQ(r.bytes_to_host,
              (trace.totalEntries() + trace.work().size()) * 8);
    EXPECT_GT(r.bytes_from_host, 0u);
}

TEST(IspEngine, SmallerCoalescingMeansMoreCommands)
{
    graph::CsrGraph g = testGraph();
    graph::EdgeLayout layout;

    ssd::SsdDevice ssd_a(testSsd());
    IspConfig coarse;
    coarse.coalesce_targets = 1024;
    IspBatchResult ra =
        IspEngine(coarse, ssd_a, layout).runBatch(traceBatch(g, 256), 0);

    ssd::SsdDevice ssd_b(testSsd());
    IspConfig fine;
    fine.coalesce_targets = 16;
    IspBatchResult rb =
        IspEngine(fine, ssd_b, layout).runBatch(traceBatch(g, 256), 0);

    EXPECT_EQ(ra.commands, 1u);
    EXPECT_EQ(rb.commands, 16u);
    // Fig 15: command overheads grow as coalescing shrinks.
    EXPECT_GT(rb.bytes_from_host, ra.bytes_from_host);
}

TEST(IspEngine, FinerCoalescingIsSlowerAtGranularityOne)
{
    // The Fig 15 collapse: per-target commands vs whole-batch command.
    graph::CsrGraph g = testGraph();
    graph::EdgeLayout layout;

    ssd::SsdDevice ssd_a(testSsd());
    IspConfig coarse;
    coarse.coalesce_targets = 1024;
    sim::Tick t_coarse =
        IspEngine(coarse, ssd_a, layout).runBatch(traceBatch(g, 128), 0)
            .finish;

    ssd::SsdDevice ssd_b(testSsd());
    IspConfig fine;
    fine.coalesce_targets = 1;
    sim::Tick t_fine =
        IspEngine(fine, ssd_b, layout).runBatch(traceBatch(g, 128), 0)
            .finish;

    EXPECT_GT(t_fine, t_coarse);
}

TEST(IspEngine, EmptyTraceIsInstant)
{
    graph::CsrGraph g = testGraph();
    ssd::SsdDevice ssd(testSsd());
    graph::EdgeLayout layout;
    IspEngine engine(IspConfig{}, ssd, layout);
    IspTraceVisitor empty;
    IspBatchResult r = engine.runBatch(empty, 555);
    EXPECT_EQ(r.finish, 555u);
    EXPECT_EQ(r.commands, 0u);
}

TEST(IspEngine, SubgraphBytesMuchSmallerThanBlockTransfers)
{
    // The paper's ~20x data-movement reduction: the dense sampled-ID
    // list must be far smaller than the block-granular transfer the
    // host-side baseline would have made for the same trace.
    graph::CsrGraph g = testGraph();
    ssd::SsdDevice ssd(testSsd());
    graph::EdgeLayout layout;
    IspEngine engine(IspConfig{}, ssd, layout);
    IspTraceVisitor trace = traceBatch(g, 256);
    IspBatchResult r = engine.runBatch(trace, 0);

    // Host baseline would fetch >= one 4 KiB block per work item with
    // sampled entries.
    std::uint64_t items = 0;
    for (const auto &w : trace.work())
        items += !w.entries.empty();
    std::uint64_t baseline_bytes = items * 4096;
    EXPECT_GT(baseline_bytes, 10 * r.bytes_to_host);
}

TEST(FpgaCsd, BreakdownAccountsAllStages)
{
    graph::CsrGraph g = testGraph();
    ssd::SsdDevice ssd(testSsd());
    graph::EdgeLayout layout;
    FpgaCsdEngine engine(FpgaCsdConfig{}, ssd, layout);
    IspTraceVisitor trace = traceBatch(g, 64);
    FpgaBatchResult r = engine.runBatch(trace, 0);

    EXPECT_GT(r.finish, 0u);
    EXPECT_GT(r.ssd_to_fpga, 0u);
    EXPECT_GT(r.sampling, 0u);
    EXPECT_GT(r.fpga_to_cpu, 0u);
    EXPECT_GT(r.p2p_bytes, r.out_bytes); // raw blocks vs dense IDs
}

TEST(FpgaCsd, TwoStepTransferDominates)
{
    // Fig 19's shape: SSD->FPGA movement is the largest component.
    graph::CsrGraph g = testGraph();
    ssd::SsdDevice ssd(testSsd());
    graph::EdgeLayout layout;
    FpgaCsdEngine engine(FpgaCsdConfig{}, ssd, layout);
    IspTraceVisitor trace = traceBatch(g, 128);
    FpgaBatchResult r = engine.runBatch(trace, 0);
    EXPECT_GT(r.ssd_to_fpga, r.sampling);
    EXPECT_GT(r.ssd_to_fpga, r.fpga_to_cpu);
}

TEST(FpgaCsd, SlowerThanInStorageSampling)
{
    // The paper's Section VI-D conclusion.
    graph::CsrGraph g = testGraph();
    graph::EdgeLayout layout;

    ssd::SsdDevice ssd_a(testSsd());
    sim::Tick isp_t =
        IspEngine(IspConfig{}, ssd_a, layout)
            .runBatch(traceBatch(g, 128), 0)
            .finish;

    ssd::SsdDevice ssd_b(testSsd());
    FpgaCsdEngine fpga(FpgaCsdConfig{}, ssd_b, layout);
    sim::Tick fpga_t = fpga.runBatch(traceBatch(g, 128), 0).finish;

    EXPECT_GT(fpga_t, isp_t);
}
