/** @file Serving-mode tests (ctest label `serving`): open-loop latency
 *  behavior, backend spread, queue-depth contention, and runner
 *  determinism of the serving-load family. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/experiment.hh"
#include "core/scenario.hh"
#include "core/serving.hh"
#include "core/system.hh"

using namespace smartsage;
using namespace smartsage::core;

namespace
{

const Workload &
smallWorkload()
{
    static Workload wl =
        Workload::make(graph::DatasetId::Amazon, false);
    return wl;
}

SystemConfig
servingSystem(const std::string &backend)
{
    SystemConfig sc;
    sc.backend = backend;
    sc.fanouts = {6, 3};
    return sc;
}

ServingConfig
servingConfig(double qps)
{
    ServingConfig cfg;
    cfg.arrival_qps = qps;
    cfg.num_requests = 256;
    cfg.fanout = 10;
    cfg.seed = 0x5e12e;
    return cfg;
}

} // namespace

TEST(Serving, EveryRequestCompletesAndLatencyIsPositive)
{
    GnnSystem system(servingSystem("direct-io"), smallWorkload());
    ServingResult r = runServingLoad(system, servingConfig(5000));
    EXPECT_EQ(r.requests, 256u);
    EXPECT_EQ(r.latency_us.count(), 256u);
    EXPECT_GT(r.p50_us(), 0.0);
    EXPECT_GE(r.p95_us(), r.p50_us());
    EXPECT_GE(r.p99_us(), r.p95_us());
    EXPECT_GE(r.max_us(), r.p99_us());
    EXPECT_GT(r.achieved_qps, 0.0);
    EXPECT_GT(r.makespan, 0u);
}

TEST(Serving, TailLatencyRisesWithOfferedLoad)
{
    // Open loop: pushing the arrival rate toward (and past) the
    // service capacity must inflate the tail. Identical request
    // streams per cell — only the arrival gaps shrink.
    std::vector<double> p99;
    for (double qps : {1000.0, 20000.0, 100000.0}) {
        GnnSystem system(servingSystem("ssd-mmap"), smallWorkload());
        ServingResult r = runServingLoad(system, servingConfig(qps));
        p99.push_back(r.p99_us());
    }
    EXPECT_LT(p99[0], p99[1]);
    EXPECT_LT(p99[1], p99[2]);
}

TEST(Serving, BackendsSeparateOnTheLatencyAxis)
{
    // At a moderate rate the storage hierarchy must be visible in the
    // tail: DRAM < PMEM < flash-backed paths.
    auto p99 = [&](const std::string &backend) {
        GnnSystem system(servingSystem(backend), smallWorkload());
        return runServingLoad(system, servingConfig(20000)).p99_us();
    };
    double dram = p99("dram");
    double pmem = p99("pmem");
    double dio = p99("direct-io");
    double mmap = p99("ssd-mmap");
    EXPECT_LT(dram, pmem);
    EXPECT_LT(pmem, dio);
    EXPECT_LT(pmem, mmap);
    // Three-way spread for the acceptance bar: all distinct.
    EXPECT_NE(dram, dio);
    EXPECT_NE(pmem, dio);
}

TEST(Serving, NarrowHostQueueAddsAdmissionWait)
{
    SystemConfig narrow = servingSystem("direct-io");
    narrow.host.io_queue_depth = 1;
    SystemConfig wide = servingSystem("direct-io");
    wide.host.io_queue_depth = 64;

    GnnSystem sys_narrow(narrow, smallWorkload());
    GnnSystem sys_wide(wide, smallWorkload());
    ServingConfig cfg = servingConfig(100000);
    ServingResult rn = runServingLoad(sys_narrow, cfg);
    ServingResult rw = runServingLoad(sys_wide, cfg);

    EXPECT_GT(rn.mean_queue_wait_us, rw.mean_queue_wait_us);
    EXPECT_GE(rn.p99_us(), rw.p99_us());
}

TEST(Serving, RerunIsBitReproducible)
{
    ServingConfig cfg = servingConfig(30000);
    GnnSystem a(servingSystem("tiered-hybrid"), smallWorkload());
    GnnSystem b(servingSystem("tiered-hybrid"), smallWorkload());
    ServingResult ra = runServingLoad(a, cfg);
    ServingResult rb = runServingLoad(b, cfg);
    EXPECT_EQ(ra.makespan, rb.makespan);
    EXPECT_DOUBLE_EQ(ra.p50_us(), rb.p50_us());
    EXPECT_DOUBLE_EQ(ra.p99_us(), rb.p99_us());
    EXPECT_DOUBLE_EQ(ra.latency_us.sum(), rb.latency_us.sum());
}

TEST(Serving, FixedRateArrivalsAreDeterministicToo)
{
    ServingConfig cfg = servingConfig(30000);
    cfg.poisson = false;
    GnnSystem a(servingSystem("multi-ssd"), smallWorkload());
    ServingResult r = runServingLoad(a, cfg);
    EXPECT_EQ(r.requests, cfg.num_requests);
    // Metronome arrivals: the makespan covers at least the arrival
    // window of (n-1) fixed gaps.
    sim::Tick window = static_cast<sim::Tick>(
        (cfg.num_requests - 1) * (1e9 / cfg.arrival_qps));
    EXPECT_GE(r.makespan, window);
}

TEST(ServingDeath, BackendWithoutAnEdgeStoreIsFatal)
{
    GnnSystem system(servingSystem("isp-hwsw"), smallWorkload());
    ServingConfig cfg = servingConfig(1000);
    EXPECT_EXIT(runServingLoad(system, cfg),
                testing::ExitedWithCode(1),
                "has no host-side edge store");
}

TEST(ServingFamily, CoversEveryServableBackend)
{
    const Scenario *s = findScenario("serving-load");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, ExperimentKind::Serving);
    EXPECT_EQ(s->backends, servableBackendIds());
    // Servable = has a host-side edge store; at least the four paper
    // host paths plus the two plugin backends.
    EXPECT_GE(s->backends.size(), 6u);
    for (const auto &id : s->backends) {
        const StorageBackend &b = BackendRegistry::instance().get(id);
        EXPECT_NE(b.caps().edge_store, EdgeStoreKind::None) << id;
    }
    EXPECT_GE(s->arrival_rates.size(), 3u);
    EXPECT_GE(s->queue_depths.size(), 2u);
}

TEST(ServingFamily, RunnerResultsAreWorkerCountInvariant)
{
    Scenario smoke = smokeVariant(*findScenario("serving-load"));
    // Trim the grid so the invariance check stays test-sized.
    smoke.backends = {"ssd-mmap", "direct-io"};
    smoke.arrival_rates = {5000, 60000};
    smoke.queue_depths = {4};
    smoke.serve_requests = 96;

    RunnerOptions serial_opts;
    serial_opts.workers = 1;
    ExperimentRunner serial(serial_opts);
    RunnerOptions parallel_opts;
    parallel_opts.workers = 3;
    ExperimentRunner parallel(parallel_opts);

    ScenarioRun a = serial.run(smoke);
    ScenarioRun b = parallel.run(smoke);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    ASSERT_EQ(a.cells.size(), 4u);
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        ASSERT_EQ(a.cells[i].metrics.size(), b.cells[i].metrics.size());
        for (std::size_t m = 0; m < a.cells[i].metrics.size(); ++m) {
            EXPECT_EQ(a.cells[i].metrics[m].name,
                      b.cells[i].metrics[m].name);
            EXPECT_DOUBLE_EQ(a.cells[i].metrics[m].value,
                             b.cells[i].metrics[m].value)
                << a.cells[i].cell.label() << " / "
                << a.cells[i].metrics[m].name;
        }
    }
    // And the load signal is present inside one backend's cells.
    EXPECT_GT(a.cells[1].metric("p99_us"),
              a.cells[0].metric("p99_us"));
}

TEST(ServingFamily, ServingJsonCarriesTheBenchSchema)
{
    Scenario smoke = smokeVariant(*findScenario("serving-load"));
    smoke.backends = {"dram", "pmem"};
    smoke.arrival_rates = {10000};
    smoke.queue_depths = {8};
    smoke.serve_requests = 64;

    ExperimentRunner runner;
    std::vector<ScenarioRun> runs = {runner.run(smoke)};
    std::ostringstream os;
    writeServingJson(os, runs);
    std::string json = os.str();
    for (const char *key :
         {"\"bench\": \"serving_load\"", "\"schema_version\": 1",
          "\"config\"", "\"results\"", "\"serving-load\"",
          "\"arrival_qps\": 10000", "\"queue_depth\": 8",
          "\"p99_us\"", "\"achieved_qps\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}
