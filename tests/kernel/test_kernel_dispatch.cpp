/** @file Kernel-dispatch equivalence (ctest label `kernel`): the
 *  scalar-tiled, AVX2, and thread-parallel GEMM flavors against the
 *  naive golden reference, plus knob round-trips and the bit-exactness
 *  contracts the dispatch layer promises (threaded GEMM invariant to
 *  worker count, row microkernels invariant to dispatch flavor). */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "gnn/tensor.hh"
#include "sim/random.hh"

using namespace smartsage;
using gnn::KernelDispatch;
using gnn::Tensor2D;

namespace
{

Tensor2D
randomTensor(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    sim::Rng rng(seed);
    return Tensor2D::uniform(rows, cols, 1.0f, rng);
}

/** Max |a - b| over all elements; FLT_MAX on shape mismatch. */
double
maxAbsDiff(const Tensor2D &a, const Tensor2D &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return 1e30;
    double worst = 0;
    for (std::size_t i = 0; i < a.data().size(); ++i)
        worst = std::max(
            worst, std::abs(double(a.data()[i]) - double(b.data()[i])));
    return worst;
}

bool
bitIdentical(const Tensor2D &a, const Tensor2D &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           a.data() == b.data();
}

} // namespace

TEST(KernelDispatch, KnobRoundTripAndResolution)
{
    EXPECT_EQ(gnn::kernelDispatchFromKnob(0), KernelDispatch::Auto);
    EXPECT_EQ(gnn::kernelDispatchFromKnob(1), KernelDispatch::Scalar);
    EXPECT_EQ(gnn::kernelDispatchFromKnob(2), KernelDispatch::Avx2);

    gnn::KernelConfig cfg;
    EXPECT_TRUE(gnn::applyKnob(cfg, "dispatch", 1));
    EXPECT_EQ(cfg.dispatch, KernelDispatch::Scalar);
    EXPECT_TRUE(gnn::applyKnob(cfg, "gemm_threads", 4));
    EXPECT_EQ(cfg.gemm_threads, 4u);
    EXPECT_FALSE(gnn::applyKnob(cfg, "no_such_knob", 1));

    // resolvedKernelDispatch never reports Auto, and only reports Avx2
    // on hardware that can actually run it.
    gnn::ScopedKernelDispatch guard(KernelDispatch::Auto);
    KernelDispatch resolved = gnn::resolvedKernelDispatch();
    EXPECT_NE(resolved, KernelDispatch::Auto);
    if (!gnn::cpuSupportsAvx2())
        EXPECT_EQ(resolved, KernelDispatch::Scalar);
}

TEST(KernelDispatch, ScalarTiledMatchesNaiveWithinTolerance)
{
    Tensor2D a = randomTensor(97, 33, 0xaa);  // A . B
    Tensor2D b = randomTensor(33, 41, 0xbb);
    Tensor2D c = randomTensor(33, 29, 0xcc);  // B^T . C (rows match)
    Tensor2D d = randomTensor(29, 33, 0xdd);  // A . D^T (cols match)

    Tensor2D nn_naive, tn_naive, nt_naive;
    {
        gnn::ScopedKernelMode naive(gnn::KernelMode::Naive);
        nn_naive = gnn::matmul(a, b);
        tn_naive = gnn::matmulTN(b, c);
        nt_naive = gnn::matmulNT(a, d);
    }
    gnn::ScopedKernelMode tiled(gnn::KernelMode::Tiled);
    gnn::ScopedKernelDispatch scalar(KernelDispatch::Scalar);
    // The tiled kernels reassociate the k-loop, so equality is up to
    // float rounding, not bitwise.
    EXPECT_LT(maxAbsDiff(gnn::matmul(a, b), nn_naive), 1e-4);
    EXPECT_LT(maxAbsDiff(gnn::matmulTN(b, c), tn_naive), 1e-4);
    EXPECT_LT(maxAbsDiff(gnn::matmulNT(a, d), nt_naive), 1e-4);
}

TEST(KernelDispatch, Avx2MatchesScalarWithinTolerance)
{
    if (!gnn::cpuSupportsAvx2())
        GTEST_SKIP() << "host CPU has no AVX2+FMA";

    Tensor2D a = randomTensor(70, 48, 0x11);  // A . B
    Tensor2D b = randomTensor(48, 53, 0x22);
    Tensor2D c = randomTensor(48, 31, 0x33);  // B^T . C (rows match)
    Tensor2D d = randomTensor(53, 48, 0x44);  // A . D^T (cols match)

    gnn::ScopedKernelMode tiled(gnn::KernelMode::Tiled);
    Tensor2D nn_s, tn_s, nt_s;
    {
        gnn::ScopedKernelDispatch scalar(KernelDispatch::Scalar);
        nn_s = gnn::matmul(a, b);
        tn_s = gnn::matmulTN(b, c);
        nt_s = gnn::matmulNT(a, d);
    }
    gnn::ScopedKernelDispatch avx2(KernelDispatch::Avx2);
    EXPECT_LT(maxAbsDiff(gnn::matmul(a, b), nn_s), 1e-4);
    EXPECT_LT(maxAbsDiff(gnn::matmulTN(b, c), tn_s), 1e-4);
    EXPECT_LT(maxAbsDiff(gnn::matmulNT(a, d), nt_s), 1e-4);
}

TEST(KernelDispatch, ThreadedGemmBitIdenticalAtAnyWorkerCount)
{
    // 300 rows spans several 64-row blocks, so 2 and 4 threads really
    // decompose the row space differently — yet per-row accumulation
    // order is fixed, so outputs must be bitwise equal.
    Tensor2D a = randomTensor(300, 64, 0x44);
    Tensor2D b = randomTensor(64, 32, 0x55);

    const KernelDispatch flavors[] = {KernelDispatch::Scalar,
                                      KernelDispatch::Avx2};
    gnn::ScopedKernelMode tiled(gnn::KernelMode::Tiled);
    for (KernelDispatch flavor : flavors) {
        if (flavor == KernelDispatch::Avx2 && !gnn::cpuSupportsAvx2())
            continue;
        gnn::ScopedKernelDispatch guard(flavor);
        Tensor2D serial;
        {
            gnn::ScopedGemmThreads one(1);
            serial = gnn::matmul(a, b);
        }
        for (unsigned threads : {2u, 4u}) {
            gnn::ScopedGemmThreads many(threads);
            EXPECT_TRUE(bitIdentical(gnn::matmul(a, b), serial))
                << gnn::kernelDispatchName(flavor) << " threads="
                << threads;
        }
    }
}

TEST(KernelDispatch, RowMicrokernelsBitIdenticalAcrossFlavors)
{
    // rowAccumulate/rowAccumulateScale use add/mul only (no FMA), so
    // the AVX2 flavor must match scalar bit-for-bit — aggregation
    // results cannot depend on the host CPU.
    if (!gnn::cpuSupportsAvx2())
        GTEST_SKIP() << "host CPU has no AVX2+FMA";

    const std::size_t n = 77; // odd: exercises the vector tail
    Tensor2D src = randomTensor(1, n, 0x66);
    Tensor2D acc_s = randomTensor(1, n, 0x77);
    Tensor2D acc_v = acc_s;

    {
        gnn::ScopedKernelDispatch scalar(KernelDispatch::Scalar);
        gnn::rowAccumulate(acc_s.row(0).data(), src.row(0).data(), n);
        gnn::rowAccumulateScale(acc_s.row(0).data(), src.row(0).data(),
                                0.125f, n);
    }
    {
        gnn::ScopedKernelDispatch avx2(KernelDispatch::Avx2);
        gnn::rowAccumulate(acc_v.row(0).data(), src.row(0).data(), n);
        gnn::rowAccumulateScale(acc_v.row(0).data(), src.row(0).data(),
                                0.125f, n);
    }
    EXPECT_TRUE(bitIdentical(acc_s, acc_v));
}

TEST(KernelDispatch, NaiveModeBypassesDispatch)
{
    // KernelMode::Naive is the golden reference: its output must not
    // depend on the dispatch flavor or thread count at all.
    Tensor2D a = randomTensor(65, 31, 0x88);
    Tensor2D b = randomTensor(31, 29, 0x99);

    gnn::ScopedKernelMode naive(gnn::KernelMode::Naive);
    Tensor2D golden;
    {
        gnn::ScopedKernelDispatch scalar(KernelDispatch::Scalar);
        gnn::ScopedGemmThreads one(1);
        golden = gnn::matmul(a, b);
    }
    gnn::ScopedKernelDispatch auto_(KernelDispatch::Auto);
    gnn::ScopedGemmThreads four(4);
    EXPECT_TRUE(bitIdentical(gnn::matmul(a, b), golden));
}
