/** @file Tests for the storage-backend registry: legacy enum alias
 *  round-trip, capability flags, error ergonomics, and golden
 *  equivalence between enum-configured and id-configured systems. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/backend.hh"
#include "core/scenario.hh"
#include "core/system.hh"

using namespace smartsage;
using namespace smartsage::core;

namespace
{

/** Shared small workload: building graphs is the expensive part. */
const Workload &
smallWorkload()
{
    static Workload wl =
        Workload::make(graph::DatasetId::Amazon, false);
    return wl;
}

SystemConfig
smallConfig()
{
    SystemConfig sc;
    sc.fanouts = {6, 3};
    sc.pipeline.batch_size = 64;
    sc.pipeline.num_batches = 4;
    sc.pipeline.workers = 2;
    return sc;
}

} // namespace

TEST(Registry, EveryDesignPointRoundTripsThroughTheAliasLayer)
{
    for (DesignPoint dp : allDesignPoints()) {
        const std::string &id = backendIdOf(dp);
        const DesignPoint *back = designPointOf(id);
        ASSERT_NE(back, nullptr) << id;
        EXPECT_EQ(*back, dp) << id;
        // The registered backend carries the paper figure label.
        const StorageBackend *backend =
            BackendRegistry::instance().find(id);
        ASSERT_NE(backend, nullptr) << id;
        EXPECT_EQ(backend->displayName(), designName(dp));
    }
    EXPECT_EQ(paperBackendIds().size(), allDesignPoints().size());
    EXPECT_EQ(designPointOf("multi-ssd"), nullptr);
    EXPECT_EQ(designPointOf("no-such-backend"), nullptr);
}

TEST(Registry, AllIsSortedAndContainsPaperPlusPluginBackends)
{
    auto ids = BackendRegistry::instance().ids();
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    std::set<std::string> set(ids.begin(), ids.end());
    EXPECT_EQ(set.size(), ids.size());
    for (const auto &id : paperBackendIds())
        EXPECT_TRUE(set.count(id)) << id;
    // The out-of-core plugins registered from src/ssd and src/host.
    EXPECT_TRUE(set.count("multi-ssd"));
    EXPECT_TRUE(set.count("tiered-hybrid"));
    EXPECT_GE(ids.size(), 9u);
}

TEST(Registry, CapabilityFlagsDescribeTheSubstrate)
{
    auto caps = [](const std::string &id) {
        return BackendRegistry::instance().get(id).caps();
    };
    EXPECT_FALSE(caps("dram").has_ssd);
    EXPECT_EQ(caps("dram").edge_store, EdgeStoreKind::Dram);
    EXPECT_FALSE(caps("pmem").has_ssd);
    EXPECT_EQ(caps("pmem").edge_store, EdgeStoreKind::Pmem);

    EXPECT_TRUE(caps("ssd-mmap").has_ssd);
    EXPECT_FALSE(caps("ssd-mmap").has_isp);
    EXPECT_EQ(caps("ssd-mmap").edge_store, EdgeStoreKind::Mmap);
    EXPECT_EQ(caps("direct-io").edge_store, EdgeStoreKind::DirectIo);

    for (const char *isp : {"isp-hwsw", "isp-oracle", "fpga-csd"}) {
        EXPECT_TRUE(caps(isp).has_ssd) << isp;
        EXPECT_TRUE(caps(isp).has_isp) << isp;
        EXPECT_EQ(caps(isp).edge_store, EdgeStoreKind::None) << isp;
    }

    EXPECT_EQ(caps("multi-ssd").edge_store, EdgeStoreKind::Sharded);
    EXPECT_EQ(caps("tiered-hybrid").edge_store, EdgeStoreKind::Tiered);
    // Extension namespaces are claimed through the caps.
    auto has_ns = [&](const std::string &id, const std::string &ns) {
        const auto &list = caps(id).knob_namespaces;
        return std::find(list.begin(), list.end(), ns) != list.end();
    };
    EXPECT_TRUE(has_ns("multi-ssd", "multi-ssd."));
    EXPECT_TRUE(has_ns("tiered-hybrid", "tiered."));
}

TEST(Registry, GoldenEquivalenceEnumVsBackendId)
{
    // An id-configured system must be bit-identical to the legacy
    // enum-configured path for every paper design point, in both
    // sampling-only and full-pipeline modes.
    for (DesignPoint dp : allDesignPoints()) {
        SystemConfig via_enum = smallConfig();
        via_enum.design = dp;
        SystemConfig via_id = smallConfig();
        via_id.backend = backendIdOf(dp);

        GnnSystem a(via_enum, smallWorkload());
        GnnSystem b(via_id, smallWorkload());
        auto sa = a.runSamplingOnly(2, 3);
        auto sb = b.runSamplingOnly(2, 3);
        EXPECT_EQ(sa.makespan, sb.makespan) << designName(dp);
        EXPECT_EQ(sa.avg_batch_us, sb.avg_batch_us) << designName(dp);

        GnnSystem c(via_enum, smallWorkload());
        GnnSystem d(via_id, smallWorkload());
        auto pc = c.runPipeline();
        auto pd = d.runPipeline();
        EXPECT_EQ(pc.makespan, pd.makespan) << designName(dp);
        EXPECT_EQ(pc.gpu_idle_frac, pd.gpu_idle_frac) << designName(dp);
        EXPECT_EQ(pc.avg_sampling_us, pd.avg_sampling_us)
            << designName(dp);
    }
}

TEST(Registry, BackendKnobsRouteThroughApplyKnob)
{
    SystemConfig sc;
    EXPECT_TRUE(applyKnob(sc, {"multi-ssd.shards", 8}));
    EXPECT_DOUBLE_EQ(sc.knobOr("multi-ssd.shards", 4), 8.0);
    EXPECT_TRUE(applyKnob(sc, {"tiered.hot_line_kib", 128}));
    EXPECT_DOUBLE_EQ(sc.knobOr("tiered.hot_line_kib", 64), 128.0);
    // Unclaimed namespaces still fail.
    EXPECT_FALSE(applyKnob(sc, {"nobody.owns_this", 1}));
    EXPECT_DOUBLE_EQ(sc.knobOr("absent", 7.5), 7.5);
}

TEST(Registry, ScenarioBackendAxisExpandsAnyRegisteredBackend)
{
    Scenario s;
    s.family = "plugin-grid";
    s.title = "plugins";
    s.kind = ExperimentKind::SamplingOnly;
    s.datasets = {graph::DatasetId::Amazon};
    s.large_scale = false;
    s.backends = {"multi-ssd", "tiered-hybrid", "dram"};
    s.fanout_grid = {{6, 3}};
    s.worker_grid = {2};
    s.num_batches = 2;
    EXPECT_EQ(s.gridSize(), 3u);
    auto cells = expandScenario(s);
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[0].backend, "multi-ssd");
    EXPECT_EQ(cells[0].config.resolvedBackend(), "multi-ssd");
    // Legacy alias stays coherent where one exists.
    EXPECT_EQ(cells[2].config.design, DesignPoint::DramOracle);
}

TEST(RegistryDeath, UnknownBackendIdListsTheSortedRegistry)
{
    SystemConfig sc = smallConfig();
    sc.backend = "quantum-holo-store";
    EXPECT_DEATH(
        { GnnSystem system(sc, smallWorkload()); },
        "unknown storage backend 'quantum-holo-store'.*registered "
        "backends: .*direct-io.*dram.*isp-hwsw");
}

TEST(RegistryDeath, UnknownBackendInScenarioIsFatal)
{
    Scenario s;
    s.family = "bogus";
    s.title = "bogus";
    s.backends = {"no-such-backend"};
    EXPECT_DEATH(expandScenario(s), "unknown storage backend");
}

TEST(RegistryDeath, DuplicateRegistrationIsFatal)
{
    EXPECT_DEATH(
        BackendRegistry::instance().add(std::make_unique<SimpleBackend>(
            "dram", "DRAM again", "duplicate", BackendCaps{},
            nullptr)),
        "duplicate storage backend registration for id 'dram'");
}

TEST(ConfigDeath, FractionsOutsideRangeAreFatal)
{
    {
        SystemConfig sc = smallConfig();
        sc.page_cache_fraction = 1.2;
        EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                     "page_cache_fraction must be within");
    }
    {
        SystemConfig sc = smallConfig();
        sc.scratchpad_fraction = -0.1;
        EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                     "scratchpad_fraction must be within");
    }
    {
        SystemConfig sc = smallConfig();
        sc.ssd_buffer_fraction = 2.5;
        EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                     "ssd_buffer_fraction must be within");
    }
}

TEST(ConfigDeath, EmptyOrZeroFanoutsAreFatal)
{
    {
        SystemConfig sc = smallConfig();
        sc.fanouts = {};
        EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                     "fanouts must not be empty");
    }
    {
        SystemConfig sc = smallConfig();
        sc.fanouts = {6, 0};
        EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                     "fanouts must all be >= 1");
    }
    {
        SystemConfig sc = smallConfig();
        sc.use_saint = true;
        sc.saint_walk_length = 0;
        EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                     "saint_walk_length must be >= 1");
    }
}
