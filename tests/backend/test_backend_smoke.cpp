/** @file Backend smoke (ctest label `backend`): every registered
 *  storage backend instantiates on the smallest dataset and runs both
 *  experiment modes; plus behavior checks for the two plugin backends
 *  (multi-ssd striping, tiered-hybrid hot cache) and the JSON stats
 *  mode. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/backend.hh"
#include "core/experiment.hh"
#include "core/scenario.hh"
#include "core/system.hh"
#include "host/tiered_store.hh"
#include "ssd/sharded_ssd.hh"

using namespace smartsage;
using namespace smartsage::core;

namespace
{

const Workload &
smallWorkload()
{
    static Workload wl =
        Workload::make(graph::DatasetId::Amazon, false);
    return wl;
}

SystemConfig
smallConfig(const std::string &backend)
{
    SystemConfig sc;
    sc.backend = backend;
    sc.fanouts = {6, 3};
    sc.pipeline.batch_size = 64;
    sc.pipeline.num_batches = 4;
    sc.pipeline.workers = 2;
    return sc;
}

} // namespace

TEST(BackendSmoke, EveryRegisteredBackendSamples)
{
    for (const StorageBackend *b : BackendRegistry::instance().all()) {
        GnnSystem system(smallConfig(b->id()), smallWorkload());
        auto r = system.runSamplingOnly(2, 3);
        EXPECT_EQ(r.batches, 3u) << b->id();
        EXPECT_GT(r.makespan, 0u) << b->id();
        EXPECT_GT(r.avg_batch_us, 0.0) << b->id();
    }
}

TEST(BackendSmoke, EveryRegisteredBackendRunsThePipeline)
{
    for (const StorageBackend *b : BackendRegistry::instance().all()) {
        GnnSystem system(smallConfig(b->id()), smallWorkload());
        auto r = system.runPipeline();
        EXPECT_EQ(r.batches, 4u) << b->id();
        EXPECT_GT(r.throughput(), 0.0) << b->id();
    }
}

TEST(BackendSmoke, InstanceSurfaceMatchesCapabilityFlags)
{
    for (const StorageBackend *b : BackendRegistry::instance().all()) {
        GnnSystem system(smallConfig(b->id()), smallWorkload());
        const BackendCaps &caps = b->caps();
        if (caps.edge_store == EdgeStoreKind::None)
            EXPECT_EQ(system.edgeStore(), nullptr) << b->id();
        else
            EXPECT_NE(system.edgeStore(), nullptr) << b->id();
        if (!caps.has_ssd)
            EXPECT_EQ(system.ssd(), nullptr) << b->id();
    }
}

TEST(BackendSmoke, StatsJsonCarriesTheBenchSchema)
{
    GnnSystem system(smallConfig("tiered-hybrid"), smallWorkload());
    system.runSamplingOnly(2, 3);
    std::ostringstream os;
    system.dumpStats(os, GnnSystem::StatsFormat::Json);
    std::string json = os.str();
    for (const char *key :
         {"\"bench\": \"system_stats\"", "\"schema_version\": 1",
          "\"config\"", "\"results\"",
          "\"backend\": \"tiered-hybrid\"", "\"graph.nodes\"",
          "\"host.hot_cache.hit_rate\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));

    // Text mode is unchanged gem5-style output.
    std::ostringstream text;
    system.dumpStats(text);
    EXPECT_NE(text.str().find("ssd.flash.pages_read"),
              std::string::npos);
}

TEST(BackendSmoke, BackendSpaceFamilyCoversTheDefaultGridRegistry)
{
    // The family covers every registered backend that participates in
    // the default grids; backends opting out (in_default_grids ==
    // false, e.g. "partitioned") stay registered but excluded so the
    // default artifacts keep a stable backend set.
    std::vector<std::string> expected;
    for (const StorageBackend *b : BackendRegistry::instance().all())
        if (b->caps().in_default_grids)
            expected.push_back(b->id());
    std::sort(expected.begin(), expected.end());

    const Scenario *s = findScenario("backend-space");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->resolvedBackends(), expected);
    EXPECT_LT(expected.size(),
              BackendRegistry::instance().ids().size());
    Scenario smoke = smokeVariant(*s);
    smoke.num_batches = 2;
    ExperimentRunner runner;
    ScenarioRun run = runner.run(smoke);
    EXPECT_EQ(run.cells.size(), expected.size());
    for (const auto &cell : run.cells)
        EXPECT_GT(cell.metric("batches_per_s"), 0.0)
            << cell.cell.label();
}

TEST(MultiSsd, MoreShardsNeverSlowDownSampling)
{
    auto makespan = [&](double shards) {
        SystemConfig sc = smallConfig("multi-ssd");
        sc.backend_knobs["multi-ssd.shards"] = shards;
        GnnSystem system(sc, smallWorkload());
        return system.runSamplingOnly(4, 6).makespan;
    };
    sim::Tick one = makespan(1);
    sim::Tick four = makespan(4);
    EXPECT_GT(one, 0u);
    // Striping across independent device timelines cannot hurt: the
    // same misses fan out over more channels/cores/links.
    EXPECT_LE(four, one);
}

TEST(MultiSsd, ShardedStoreStripesBlocksRoundRobin)
{
    host::HostConfig host;
    host.scratchpad_bytes = sim::MiB(1);
    ssd::SsdConfig ssd_config;
    ssd::ShardedSsdParams params;
    params.shards = 4;
    params.stripe_bytes = host.os_page_bytes; // one block per stripe
    ssd::ShardedEdgeStore store(host, ssd_config, params);
    ASSERT_EQ(store.numShards(), 4u);

    // Cold gather touching 8 consecutive blocks: two per shard.
    std::vector<std::uint64_t> addrs;
    for (std::uint64_t b = 0; b < 8; ++b)
        addrs.push_back(b * host.os_page_bytes);
    store.readGather(0, addrs, 8);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_GT(store.shard(i).hostReads(), 0u) << "shard " << i;
    EXPECT_EQ(store.submits(), 1u); // one coalesced submission
}

TEST(MultiSsd, BogusShardKnobIsFatal)
{
    SystemConfig sc = smallConfig("multi-ssd");
    sc.backend_knobs["multi-ssd.shards"] = 0;
    EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                 "multi-ssd.shards must be within");
}

TEST(MultiSsd, NonIntegerShardKnobIsFatal)
{
    SystemConfig sc = smallConfig("multi-ssd");
    sc.backend_knobs["multi-ssd.shards"] = 4.7;
    EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                 "multi-ssd.shards must be a whole number");
}

TEST(MultiSsd, MisspelledKnobInClaimedNamespaceIsFatal)
{
    // A typo inside a namespace the backend owns must fail loudly at
    // build time, not silently sweep at the default value.
    SystemConfig sc = smallConfig("multi-ssd");
    sc.backend_knobs["multi-ssd.stripe_kb"] = 128; // sic: _kb
    EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                 "unknown 'multi-ssd\\.' knob 'multi-ssd.stripe_kb'");
}

TEST(TieredHybrid, MisspelledKnobInClaimedNamespaceIsFatal)
{
    SystemConfig sc = smallConfig("tiered-hybrid");
    sc.backend_knobs["tiered.hotline_kib"] = 32;
    EXPECT_DEATH({ GnnSystem system(sc, smallWorkload()); },
                 "unknown 'tiered\\.' knob");
}

TEST(TieredHybrid, HotCacheBeatsPlainDirectIo)
{
    // With a DRAM tier sized like the page cache in front of the same
    // direct-I/O path, repeated sampling must not be slower than the
    // bare direct-I/O design.
    SystemConfig tiered = smallConfig("tiered-hybrid");
    SystemConfig dio = smallConfig("direct-io");
    GnnSystem a(tiered, smallWorkload());
    GnnSystem b(dio, smallWorkload());
    auto ra = a.runSamplingOnly(2, 6);
    auto rb = b.runSamplingOnly(2, 6);
    EXPECT_LE(ra.makespan, rb.makespan);
    auto *store =
        dynamic_cast<host::TieredEdgeStore *>(a.edgeStore());
    ASSERT_NE(store, nullptr);
    EXPECT_GT(store->hotHitRate(), 0.0);
}

TEST(TieredHybrid, ColdMissesReachTheSsd)
{
    SystemConfig sc = smallConfig("tiered-hybrid");
    GnnSystem system(sc, smallWorkload());
    system.runSamplingOnly(2, 4);
    ASSERT_NE(system.ssd(), nullptr);
    EXPECT_GT(system.ssd()->hostReads(), 0u);
    EXPECT_FALSE(system.backend().notes().empty());
}
