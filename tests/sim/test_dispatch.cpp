/** @file Golden-tick tests for StorageChannel dispatch policies and
 *  admission control (sim/io.hh): deadline/priority reordering of the
 *  pending queue, FIFO tick-identity for untagged traffic under every
 *  policy, and the max_queue / slo_aware shed paths. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/io.hh"

using namespace smartsage;
using namespace smartsage::sim;

namespace
{

/** Fixed-service process: every dispatch takes exactly @p ticks. */
StorageChannel::Service
fixedService(Tick ticks)
{
    return [ticks](Tick start) { return start + ticks; };
}

} // namespace

TEST(DispatchPolicy, EarlierDeadlineJumpsAheadOfFifoOrder)
{
    // Depth-1 channel under EDF: while A occupies the slot, B (deadline
    // 500) arrives before C (deadline 300). The slot frees at tick 100
    // and must go to C — the FIFO-earlier B waits one more service.
    EventQueue eq;
    StorageChannel ch("edf", 1);
    ch.setDispatchPolicy(DispatchPolicy::Deadline);
    Tick fa = 0, fb = 0, fc = 0;

    eq.schedule(0, [&] {
        ch.submit(eq, fixedService(100),
                  [&](Tick f, IoStatus) { fa = f; });
    });
    eq.schedule(10, [&] {
        ch.submit(eq, fixedService(100),
                  [&](Tick f, IoStatus) { fb = f; },
                  DispatchTag{0, 500});
    });
    eq.schedule(20, [&] {
        ch.submit(eq, fixedService(100),
                  [&](Tick f, IoStatus) { fc = f; },
                  DispatchTag{0, 300});
    });
    eq.run();
    EXPECT_EQ(fa, 100u);
    EXPECT_EQ(fc, 200u); // dispatched ahead of the earlier arrival
    EXPECT_EQ(fb, 300u);
    EXPECT_TRUE(ch.idle());
}

TEST(DispatchPolicy, NoDeadlineSortsLastUnderEdf)
{
    // An untagged request (deadline 0 = "none") must not be mistaken
    // for deadline-at-epoch: any finite deadline beats it.
    EventQueue eq;
    StorageChannel ch("edf", 1);
    ch.setDispatchPolicy(DispatchPolicy::Deadline);
    std::vector<int> order;

    eq.schedule(0, [&] {
        ch.submit(eq, fixedService(100),
                  [&](Tick, IoStatus) { order.push_back(0); });
        ch.submit(eq, fixedService(100),
                  [&](Tick, IoStatus) { order.push_back(1); }); // untagged
        ch.submit(eq, fixedService(100),
                  [&](Tick, IoStatus) { order.push_back(2); },
                  DispatchTag{0, 900});
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(DispatchPolicy, HigherPriorityDispatchesFirstTiesByArrival)
{
    // Under Priority the freed slot goes to the highest priority; equal
    // priorities keep arrival order (B at prio 1 arrives before C and D
    // at prio 5: C then D then B).
    EventQueue eq;
    StorageChannel ch("prio", 1);
    ch.setDispatchPolicy(DispatchPolicy::Priority);
    std::vector<int> order;
    auto track = [&order](int id) {
        return [&order, id](Tick, IoStatus) { order.push_back(id); };
    };

    eq.schedule(0, [&] {
        ch.submit(eq, fixedService(100), track(0));
        ch.submit(eq, fixedService(100), track(1), DispatchTag{1, 0});
        ch.submit(eq, fixedService(100), track(2), DispatchTag{5, 0});
        ch.submit(eq, fixedService(100), track(3), DispatchTag{5, 0});
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 1}));
}

TEST(DispatchPolicy, UntaggedTrafficIsTickIdenticalUnderEveryPolicy)
{
    // With every request carrying the default tag the non-FIFO policies
    // must degenerate to exact FIFO selection: same order, same ticks.
    auto runUnder = [](DispatchPolicy policy) {
        EventQueue eq;
        StorageChannel ch("ch", 2);
        ch.setDispatchPolicy(policy);
        std::vector<Tick> finishes;
        eq.schedule(0, [&] {
            for (int i = 0; i < 6; ++i)
                ch.submit(eq, fixedService(10 + static_cast<Tick>(i)),
                          [&](Tick f, IoStatus) { finishes.push_back(f); });
        });
        eq.run();
        return finishes;
    };
    std::vector<Tick> fifo = runUnder(DispatchPolicy::Fifo);
    EXPECT_EQ(runUnder(DispatchPolicy::Priority), fifo);
    EXPECT_EQ(runUnder(DispatchPolicy::Deadline), fifo);
    ASSERT_EQ(fifo.size(), 6u);
}

TEST(Admission, MaxQueueBoundShedsAtTheSubmitEdge)
{
    // Depth-1 channel with a one-deep pending bound: A takes the slot,
    // B queues, C finds the queue full and is shed at its submit tick
    // without ever entering service.
    EventQueue eq;
    StorageChannel ch("bounded", 1);
    ch.setAdmission(AdmissionControl{/*max_queue=*/1, false});
    Tick fa = 0, fb = 0, fc = ~Tick{0};
    IoStatus sc = IoStatus::Ok;

    eq.schedule(0, [&] {
        ch.submit(eq, fixedService(100),
                  [&](Tick f, IoStatus) { fa = f; });
        ch.submit(eq, fixedService(100),
                  [&](Tick f, IoStatus) { fb = f; });
        ch.submit(eq, fixedService(100), [&](Tick f, IoStatus s) {
            fc = f;
            sc = s;
        });
    });
    eq.run();
    EXPECT_EQ(fa, 100u);
    EXPECT_EQ(fb, 200u);
    EXPECT_EQ(fc, 0u); // shed completion fires at the submit tick
    EXPECT_EQ(sc, IoStatus::Shed);
    EXPECT_EQ(ch.shedAdmission(), 1u);
    EXPECT_EQ(ch.completed(), 2u);
    EXPECT_EQ(ch.submitted(), 3u);
}

TEST(Admission, SloAwareShedsOnlyDeadlinesTheEstimateMisses)
{
    // Build service history (one completed 100-tick request), then with
    // the slot busy submit two tagged requests: the estimator predicts
    // finish = now + 2 * mean_service for an empty pending queue, so a
    // deadline inside that window is shed and a comfortable one admits.
    EventQueue eq;
    StorageChannel ch("slo", 1);
    ch.setAdmission(AdmissionControl{0, /*slo_aware=*/true});
    Tick fw = 0;
    IoStatus sz = IoStatus::Ok, sw = IoStatus::Shed;

    eq.schedule(0, [&] { ch.submit(eq, fixedService(100), {}); });
    eq.schedule(200, [&] { ch.submit(eq, fixedService(100), {}); });
    // Estimate at tick 210: 210 + 100 + 100 = 410 > 260 -> shed.
    eq.schedule(210, [&] {
        ch.submit(eq, fixedService(100),
                  [&](Tick, IoStatus s) { sz = s; }, DispatchTag{0, 260});
    });
    // Estimate at tick 220: 220 + 100 + 100 = 420 <= 600 -> admit.
    eq.schedule(220, [&] {
        ch.submit(eq, fixedService(100), [&](Tick f, IoStatus s) {
            fw = f;
            sw = s;
        }, DispatchTag{0, 600});
    });
    eq.run();
    EXPECT_EQ(sz, IoStatus::Shed);
    EXPECT_EQ(sw, IoStatus::Ok);
    EXPECT_EQ(fw, 400u); // queued behind the tick-200 request
    EXPECT_EQ(ch.shedAdmission(), 1u);
}

TEST(Admission, UntaggedRequestsPassSloAwareAdmissionUntouched)
{
    // slo_aware only judges deadline-carrying requests; an untagged
    // flood through an slo_aware channel behaves exactly like FIFO.
    EventQueue eq;
    StorageChannel ch("slo", 1);
    ch.setAdmission(AdmissionControl{0, /*slo_aware=*/true});
    std::vector<Tick> finishes;

    eq.schedule(0, [&] {
        for (int i = 0; i < 4; ++i)
            ch.submit(eq, fixedService(50),
                      [&](Tick f, IoStatus) { finishes.push_back(f); });
    });
    eq.run();
    EXPECT_EQ(finishes, (std::vector<Tick>{50, 100, 150, 200}));
    EXPECT_EQ(ch.shedAdmission(), 0u);
}
