/** @file Unit tests for the async storage request layer (sim/io.hh):
 *  StorageChannel admission, queue-depth bounding, the submit-and-drain
 *  blocking adapter, and the async ports of SsdDevice / FlashArray. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/io.hh"
#include "sim/resource.hh"
#include "ssd/ssd_device.hh"

using namespace smartsage;
using namespace smartsage::sim;

namespace
{

/** Channel whose service takes a fixed time on a shared server. */
struct FixedService
{
    Server server{"srv"};
    Tick service_time;

    StorageChannel::Service
    make()
    {
        return [this](Tick start) {
            return server.request(start, service_time).finish;
        };
    }
};

} // namespace

TEST(StorageChannel, ImmediateDispatchWhenIdle)
{
    EventQueue eq;
    StorageChannel ch("ch", 4);
    FixedService svc{Server{"srv"}, 100};

    Tick finish = 0;
    eq.schedule(50, [&] {
        ch.submit(eq, svc.make(), [&](Tick f, IoStatus) { finish = f; });
    });
    eq.run();
    EXPECT_EQ(finish, 150u);
    EXPECT_EQ(ch.submitted(), 1u);
    EXPECT_EQ(ch.completed(), 1u);
    EXPECT_EQ(ch.totalQueueWait(), 0u);
    EXPECT_TRUE(ch.idle());
}

TEST(StorageChannel, DepthBoundsConcurrentService)
{
    // Three same-tick submissions into a depth-2 channel over a pool
    // of two independent servers: the third must wait for a slot.
    EventQueue eq;
    StorageChannel ch("ch", 2);
    ServerPool pool("pool", 2);
    std::vector<Tick> finishes;

    eq.schedule(0, [&] {
        for (int i = 0; i < 3; ++i) {
            ch.submit(
                eq,
                [&pool](Tick start) {
                    return pool.request(start, 100).finish;
                },
                [&](Tick f, IoStatus) { finishes.push_back(f); });
        }
    });
    eq.run();
    ASSERT_EQ(finishes.size(), 3u);
    EXPECT_EQ(finishes[0], 100u);
    EXPECT_EQ(finishes[1], 100u);
    // The third dispatched only at tick 100, despite two free-by-then
    // servers: admission, not service, was the bottleneck.
    EXPECT_EQ(finishes[2], 200u);
    EXPECT_EQ(ch.totalQueueWait(), 100u);
    EXPECT_EQ(ch.maxQueueWait(), 100u);
    EXPECT_EQ(ch.peakOutstanding(), 3u);
}

TEST(StorageChannel, QueueWaitStatsCoverOnlyQueuedRequests)
{
    // Two back-to-back single-request submissions never queue: the
    // wait stats must stay empty rather than recording zero waits,
    // which would silently drag the mean queue wait toward zero.
    EventQueue eq;
    StorageChannel ch("ch", 1);
    Server server("srv");
    auto service = [&server](Tick start) {
        return server.request(start, 100).finish;
    };

    eq.schedule(0, [&] { ch.submit(eq, service, {}); });
    eq.schedule(500, [&] { ch.submit(eq, service, {}); });
    eq.run();
    EXPECT_EQ(ch.submitted(), 2u);
    EXPECT_EQ(ch.queuedCount(), 0u);
    EXPECT_EQ(ch.totalQueueWait(), 0u);

    // Three same-tick submissions into the depth-1 channel: the first
    // dispatches straight into the free slot, the other two queue for
    // 100 and 200 ticks. The corrected mean over *queued* requests is
    // 150; the pre-fix mean over all submissions would read 100.
    eq.reset();
    ch.reset();
    server.reset();
    eq.schedule(0, [&] {
        for (int i = 0; i < 3; ++i)
            ch.submit(eq, service, {});
    });
    eq.run();
    EXPECT_EQ(ch.submitted(), 3u);
    EXPECT_EQ(ch.queuedCount(), 2u);
    EXPECT_EQ(ch.totalQueueWait(), 300u);
    EXPECT_EQ(ch.maxQueueWait(), 200u);
    EXPECT_EQ(static_cast<double>(ch.totalQueueWait()) /
                  static_cast<double>(ch.queuedCount()),
              150.0);

    ch.reset();
    EXPECT_EQ(ch.queuedCount(), 0u);
}

TEST(StorageChannel, PendingRequestsDispatchInFifoOrder)
{
    EventQueue eq;
    StorageChannel ch("ch", 1);
    Server server("srv");
    std::vector<int> order;

    eq.schedule(0, [&] {
        for (int i = 0; i < 4; ++i) {
            ch.submit(
                eq,
                [&server](Tick start) {
                    return server.request(start, 10).finish;
                },
                [&order, i](Tick, IoStatus) { order.push_back(i); });
        }
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(ch.completed(), 4u);
}

TEST(StorageChannel, WiderQueueNeverIncreasesWait)
{
    auto runAt = [](unsigned depth) {
        EventQueue eq;
        StorageChannel ch("ch", depth);
        ServerPool pool("pool", 4);
        for (int i = 0; i < 16; ++i) {
            eq.schedule(static_cast<Tick>(i), [&ch, &eq, &pool] {
                ch.submit(
                    eq,
                    [&pool](Tick start) {
                        return pool.request(start, 50).finish;
                    },
                    {});
            });
        }
        eq.run();
        return ch.totalQueueWait();
    };
    Tick narrow = runAt(1);
    Tick wide = runAt(8);
    EXPECT_GT(narrow, 0u);
    EXPECT_LT(wide, narrow);
}

TEST(StorageChannel, StagedServiceHoldsTheSlotUntilCompletion)
{
    EventQueue eq;
    StorageChannel ch("ch", 1);
    std::vector<Tick> finishes;

    auto staged = [](EventQueue &q, Tick start, IoCompletion complete) {
        // Two-stage service: 30 ticks, then 20 more.
        q.schedule(start + 30, [&q, complete = std::move(complete)] {
            Tick mid = q.now();
            q.schedule(mid + 20, [complete = std::move(complete), mid] {
                complete(mid + 20, IoStatus::Ok);
            });
        });
    };
    eq.schedule(0, [&] {
        ch.submitStaged(eq, staged,
                        [&](Tick f, IoStatus) { finishes.push_back(f); });
        ch.submitStaged(eq, staged,
                        [&](Tick f, IoStatus) { finishes.push_back(f); });
    });
    eq.run();
    ASSERT_EQ(finishes.size(), 2u);
    EXPECT_EQ(finishes[0], 50u);
    EXPECT_EQ(finishes[1], 100u); // waited for the full staged service
}

TEST(DrainOne, ReturnsTheCompletionTick)
{
    EventQueue eq;
    StorageChannel ch("ch", 2);
    Server server("srv");
    Tick t = drainOne(eq, 500, [&](EventQueue &q, IoCompletion done) {
        ch.submit(
            q,
            [&server](Tick start) {
                return server.request(start, 25).finish;
            },
            std::move(done));
    });
    EXPECT_EQ(t, 525u);
    // The drain queue is reusable for a later, earlier-tick arrival.
    Tick t2 = drainOne(eq, 100, [&](EventQueue &q, IoCompletion done) {
        ch.submit(
            q,
            [&server](Tick start) {
                return server.request(start, 25).finish;
            },
            std::move(done));
    });
    EXPECT_EQ(t2, 550u); // server busy until 525, then 25 of service
}

TEST(SsdAsync, BlockingAdapterMatchesSingleAsyncSubmission)
{
    ssd::SsdConfig cfg;
    ssd::SsdDevice blocking_dev(cfg);
    ssd::SsdDevice async_dev(cfg);

    Tick blocking = blocking_dev.readBlocks(1000, 4096, 8192);

    EventQueue eq;
    Tick async = 0;
    eq.schedule(1000, [&] {
        async_dev.submitRead(eq, 4096, 8192,
                             [&](Tick f, IoStatus) { async = f; });
    });
    eq.run();
    EXPECT_EQ(async, blocking);
    EXPECT_EQ(async_dev.hostReads(), blocking_dev.hostReads());
    EXPECT_EQ(async_dev.bytesToHost(), blocking_dev.bytesToHost());
}

TEST(SsdAsync, ConcurrentReadsOverlapInsideTheDevice)
{
    // Eight same-tick single-block reads: async in-flight service
    // must beat the serialized blocking sequence, because flash pages
    // on distinct dies overlap while the blocking path drains each
    // command before submitting the next.
    ssd::SsdConfig cfg;
    ssd::SsdDevice serial_dev(cfg);
    ssd::SsdDevice async_dev(cfg);

    Tick serial = 0;
    for (int i = 0; i < 8; ++i)
        serial = serial_dev.readBlocks(serial, i * sim::KiB(64), 4096);

    EventQueue eq;
    Tick last = 0;
    eq.schedule(0, [&] {
        for (int i = 0; i < 8; ++i) {
            async_dev.submitRead(eq, i * sim::KiB(64), 4096,
                                 [&](Tick f, IoStatus) {
                                     last = std::max(last, f);
                                 });
        }
    });
    eq.run();
    EXPECT_GT(last, 0u);
    EXPECT_LT(last, serial);
}

TEST(SsdAsync, NarrowNvmeQueueSerializes)
{
    ssd::SsdConfig cfg;
    cfg.queue_depth = 1;
    ssd::SsdDevice dev(cfg);

    EventQueue eq;
    eq.schedule(0, [&] {
        for (int i = 0; i < 4; ++i)
            dev.submitRead(eq, i * sim::MiB(1), 4096, {});
    });
    eq.run();
    EXPECT_EQ(dev.nvmeQueue().completed(), 4u);
    // Three of the four commands had to wait for the single SQ slot.
    EXPECT_GT(dev.nvmeQueue().totalQueueWait(), 0u);
    EXPECT_EQ(dev.nvmeQueue().peakOutstanding(), 4u);
}

TEST(FlashAsync, ChannelQueueBoundsPageReads)
{
    flash::FlashConfig cfg;
    cfg.channels = 2;
    cfg.dies_per_channel = 2;
    cfg.channel_queue_depth = 1;
    flash::FlashArray flash(cfg);

    EventQueue eq;
    std::vector<Tick> finishes;
    eq.schedule(0, [&] {
        // Four reads on channel 0, alternating dies: with a depth-1
        // command queue the second die read cannot start early even
        // though its die is free.
        for (unsigned i = 0; i < 4; ++i) {
            flash.submitRead(eq, {0, i % 2, i},
                             [&](Tick f, IoStatus) { finishes.push_back(f); });
        }
    });
    eq.run();
    ASSERT_EQ(finishes.size(), 4u);
    EXPECT_GT(flash.channelQueue(0).totalQueueWait(), 0u);
    EXPECT_EQ(flash.pagesRead(), 4u);

    // The same reads through a deep queue finish strictly earlier.
    flash::FlashConfig deep_cfg = cfg;
    deep_cfg.channel_queue_depth = 8;
    flash::FlashArray deep(deep_cfg);
    EventQueue eq2;
    Tick deep_last = 0;
    eq2.schedule(0, [&] {
        for (unsigned i = 0; i < 4; ++i) {
            deep.submitRead(eq2, {0, i % 2, i}, [&](Tick f, IoStatus) {
                deep_last = std::max(deep_last, f);
            });
        }
    });
    eq2.run();
    EXPECT_LT(deep_last, finishes.back());
}
