/** @file Byte-exact serialization primitives (sim/serialize.hh):
 *  writer/reader round-trips, bounds checking, CRC-32 and FNV-1a
 *  reference vectors, and atomic file replacement. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "sim/serialize.hh"

namespace fs = std::filesystem;
using namespace smartsage::sim;

namespace
{

fs::path
scratchDir()
{
    fs::path dir = fs::temp_directory_path() /
                   ("serialize-test-" + std::to_string(::getpid()));
    fs::create_directories(dir);
    return dir;
}

} // namespace

TEST(Serialize, WriterReaderRoundTripAllTypes)
{
    ByteWriter writer;
    writer.u8(0xab);
    writer.u32(0xdeadbeefu);
    writer.u64(0x0123456789abcdefULL);
    writer.f32(-1.5f);
    writer.f64(3.14159);
    writer.str("hello \0 world"); // string_view keeps the NUL out
    writer.str("");
    const std::uint8_t blob[] = {9, 8, 7};
    writer.bytes(blob, sizeof(blob));

    ByteReader reader(writer.buffer());
    EXPECT_EQ(reader.u8(), 0xab);
    EXPECT_EQ(reader.u32(), 0xdeadbeefu);
    EXPECT_EQ(reader.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(reader.f32(), -1.5f);
    EXPECT_EQ(reader.f64(), 3.14159);
    EXPECT_EQ(reader.str(), "hello ");
    EXPECT_EQ(reader.str(), "");
    std::uint8_t out[3] = {};
    reader.bytes(out, sizeof(out));
    EXPECT_EQ(out[0], 9);
    EXPECT_EQ(out[2], 7);
    EXPECT_TRUE(reader.atEnd());
}

TEST(Serialize, FloatsRoundTripBitExactly)
{
    // NaN payloads and signed zeros survive: values travel as bit
    // patterns, never through text.
    ByteWriter writer;
    writer.f64(std::numeric_limits<double>::quiet_NaN());
    writer.f64(-0.0);
    writer.f32(std::numeric_limits<float>::infinity());

    ByteReader reader(writer.buffer());
    EXPECT_TRUE(std::isnan(reader.f64()));
    EXPECT_TRUE(std::signbit(reader.f64()));
    EXPECT_TRUE(std::isinf(reader.f32()));
}

TEST(Serialize, IntegersAreLittleEndianOnTheWire)
{
    ByteWriter writer;
    writer.u32(0x01020304u);
    const std::vector<std::uint8_t> &buf = writer.buffer();
    ASSERT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf[0], 0x04);
    EXPECT_EQ(buf[3], 0x01);
}

TEST(Serialize, ReaderThrowsPastTheEnd)
{
    ByteWriter writer;
    writer.u32(7);
    ByteReader reader(writer.buffer());
    EXPECT_EQ(reader.u32(), 7u);
    EXPECT_THROW(reader.u8(), SerializeError);

    // A length prefix pointing past the buffer is caught, not read.
    ByteWriter bad;
    bad.u64(1000); // claims a 1000-byte string in a 8-byte buffer
    ByteReader bad_reader(bad.buffer());
    EXPECT_THROW(bad_reader.str(), SerializeError);
}

TEST(Serialize, Crc32MatchesReferenceVector)
{
    const std::string check = "123456789";
    EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Serialize, Fnv1a64MatchesReferenceVectors)
{
    // Classic FNV-1a test vectors.
    EXPECT_EQ(fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
    const std::string a = "a";
    EXPECT_EQ(fnv1a64(a.data(), a.size()), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(hashHex(0xaf63dc4c8601ec8cULL), "af63dc4c8601ec8c");
    EXPECT_EQ(hashHex(0x1ULL), "0000000000000001");
}

TEST(Serialize, AtomicWriteThenReadRoundTrips)
{
    const fs::path dir = scratchDir();
    const std::string path = (dir / "payload.bin").string();
    const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251};

    atomicWriteFile(path, payload);
    EXPECT_EQ(readFile(path), payload);

    // Replacement is whole-file: the old content never mixes in.
    const std::vector<std::uint8_t> shorter = {9};
    atomicWriteFile(path, shorter);
    EXPECT_EQ(readFile(path), shorter);

    EXPECT_THROW(readFile((dir / "missing.bin").string()),
                 SerializeError);
    fs::remove_all(dir);
}
