/** @file Tests for the functional-path worker thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/thread_pool.hh"

using smartsage::sim::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { count.fetch_add(1); });
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, TaskExceptionIsRethrownFromWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([] { throw std::runtime_error("task boom"); });
    pool.submit([&count] { count.fetch_add(1); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed; the pool stays usable.
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { count.fetch_add(1); });
    }
    EXPECT_EQ(count.load(), 50);
}
