/** @file Unit tests for the busy-until contention models. */

#include <gtest/gtest.h>

#include "sim/resource.hh"

using namespace smartsage::sim;

TEST(Server, IdleServerStartsImmediately)
{
    Server s;
    auto iv = s.request(100, 50);
    EXPECT_EQ(iv.start, 100u);
    EXPECT_EQ(iv.finish, 150u);
    EXPECT_EQ(iv.waited(100), 0u);
}

TEST(Server, BackToBackRequestsQueue)
{
    Server s;
    s.request(0, 100);
    auto iv = s.request(10, 100);
    EXPECT_EQ(iv.start, 100u);
    EXPECT_EQ(iv.finish, 200u);
    EXPECT_EQ(iv.waited(10), 90u);
}

TEST(Server, GapLeavesServerIdle)
{
    Server s;
    s.request(0, 10);
    auto iv = s.request(100, 10);
    EXPECT_EQ(iv.start, 100u);
    EXPECT_EQ(s.busyTime(), 20u);
    EXPECT_DOUBLE_EQ(s.utilization(200), 0.1);
}

TEST(Server, ResetClearsHistory)
{
    Server s;
    s.request(0, 1000);
    s.reset();
    EXPECT_EQ(s.nextFree(), 0u);
    EXPECT_EQ(s.busyTime(), 0u);
    EXPECT_EQ(s.served(), 0u);
}

TEST(ServerPool, SpreadsAcrossMembers)
{
    ServerPool pool("p", 4);
    // Four simultaneous requests should all start immediately.
    for (int i = 0; i < 4; ++i) {
        auto iv = pool.request(0, 100);
        EXPECT_EQ(iv.start, 0u);
    }
    // The fifth queues behind one of them.
    auto iv = pool.request(0, 100);
    EXPECT_EQ(iv.start, 100u);
}

TEST(ServerPool, RequestOnPinsToMember)
{
    ServerPool pool("p", 2);
    pool.requestOn(0, 0, 100);
    auto iv = pool.requestOn(0, 0, 100);
    EXPECT_EQ(iv.start, 100u); // same member, must queue
    auto other = pool.requestOn(1, 0, 100);
    EXPECT_EQ(other.start, 0u); // other member is free
}

TEST(ServerPool, UtilizationAveragesMembers)
{
    ServerPool pool("p", 2);
    pool.requestOn(0, 0, 100);
    EXPECT_DOUBLE_EQ(pool.utilization(100), 0.5);
}

TEST(ServerPoolDeath, OutOfRangeMemberPanics)
{
    ServerPool pool("p", 2);
    EXPECT_DEATH(pool.requestOn(2, 0, 10), "out of range");
}

TEST(BandwidthLink, TransferTimeMatchesBandwidth)
{
    BandwidthLink link("l", 1.0, 0); // 1 GB/s, no latency
    auto iv = link.transfer(0, 1000000000ull);
    EXPECT_EQ(iv.finish, sec(1));
}

TEST(BandwidthLink, LatencyAddsAfterWire)
{
    BandwidthLink link("l", 1.0, us(5));
    auto iv = link.transfer(0, 1000000ull); // 1 ms wire
    EXPECT_EQ(iv.finish, ms(1) + us(5));
}

TEST(BandwidthLink, WireSerializesButLatencyDoesNot)
{
    BandwidthLink link("l", 1.0, us(5));
    link.transfer(0, 1000000ull);
    auto second = link.transfer(0, 1000000ull);
    // Second transfer waits for the wire (1 ms) but not the first
    // transfer's latency.
    EXPECT_EQ(second.start, ms(1));
    EXPECT_EQ(second.finish, ms(2) + us(5));
}

TEST(BandwidthLink, TracksBytes)
{
    BandwidthLink link("l", 2.0, 0);
    link.transfer(0, 100);
    link.transfer(0, 200);
    EXPECT_EQ(link.bytesMoved(), 300u);
}

TEST(BandwidthLink, UtilizationFractionOfPeak)
{
    BandwidthLink link("l", 1.0, 0);
    link.transfer(0, 500000000ull); // 0.5 GB moved
    EXPECT_NEAR(link.utilization(sec(1)), 0.5, 1e-9);
}
