/** @file Unit and property tests for the generic set-associative LRU. */

#include <gtest/gtest.h>

#include "sim/set_assoc.hh"
#include "sim/types.hh"
#include "sim/random.hh"

using namespace smartsage::sim;

TEST(SetAssoc, ColdMissThenHit)
{
    SetAssocLru c(KiB(64), 64, 4);
    EXPECT_FALSE(c.access(10));
    EXPECT_TRUE(c.access(10));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssoc, LineOfUsesLineBytes)
{
    SetAssocLru c(KiB(64), 64, 4);
    EXPECT_EQ(c.lineOf(0), 0u);
    EXPECT_EQ(c.lineOf(63), 0u);
    EXPECT_EQ(c.lineOf(64), 1u);
    EXPECT_EQ(c.lineOf(6400), 100u);
}

TEST(SetAssoc, LruEvictsOldest)
{
    // One set of 2 ways: force everything into the same set by using a
    // cache with exactly one set.
    SetAssocLru c(128, 64, 2); // 2 lines, 2 ways -> 1 set
    EXPECT_EQ(c.numSets(), 1u);
    c.access(1);
    c.access(2);
    c.access(1);    // refresh 1; LRU is now 2
    c.access(3);    // evicts 2
    EXPECT_TRUE(c.lookup(1));
    EXPECT_TRUE(c.lookup(3));
    EXPECT_FALSE(c.lookup(2));
}

TEST(SetAssoc, WorkingSetWithinCapacityEventuallyAllHits)
{
    SetAssocLru c(KiB(256), 64, 16);
    // Working set = 1/8 of capacity, so conflict misses are unlikely.
    const std::uint64_t lines = KiB(32) / 64;
    for (std::uint64_t i = 0; i < lines; ++i)
        c.access(i);
    std::uint64_t before = c.misses();
    for (int round = 0; round < 4; ++round) {
        for (std::uint64_t i = 0; i < lines; ++i)
            c.access(i);
    }
    EXPECT_EQ(c.misses(), before);
}

TEST(SetAssoc, RandomStreamOverLargeSpaceMostlyMisses)
{
    SetAssocLru c(KiB(64), 64, 8);
    Rng rng(3);
    for (int i = 0; i < 20000; ++i)
        c.access(rng.nextBounded(1u << 24));
    EXPECT_GT(c.missRate(), 0.95);
}

TEST(SetAssoc, ResetRestoresColdState)
{
    SetAssocLru c(KiB(64), 64, 4);
    c.access(5);
    c.reset();
    EXPECT_EQ(c.hits() + c.misses(), 0u);
    EXPECT_FALSE(c.access(5));
}

TEST(SetAssocDeath, TooSmallForOneSetPanics)
{
    EXPECT_DEATH(SetAssocLru(64, 64, 4), "smaller than one set");
}

/** Property sweep over shapes: capacity is respected exactly. */
struct ShapeParam
{
    std::uint64_t capacity;
    std::uint64_t line;
    unsigned ways;
};

class SetAssocShapes : public ::testing::TestWithParam<ShapeParam>
{
};

TEST_P(SetAssocShapes, SequentialFillWithinSetsNeverEvicts)
{
    auto p = GetParam();
    SetAssocLru c(p.capacity, p.line, p.ways);
    // Insert exactly ways distinct lines into one set by mapping
    // through the cache's own behaviour: repeated re-touch of a small
    // set of lines must keep hitting.
    std::uint64_t distinct = p.ways; // conservative per-set bound
    for (std::uint64_t i = 0; i < distinct; ++i)
        c.access(i * 7919); // spread across sets
    for (std::uint64_t i = 0; i < distinct; ++i)
        EXPECT_TRUE(c.lookup(i * 7919));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SetAssocShapes,
    ::testing::Values(ShapeParam{KiB(16), 64, 2},
                      ShapeParam{KiB(64), 64, 8},
                      ShapeParam{MiB(1), 4096, 16},
                      ShapeParam{KiB(512), 16384, 16}));
