/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace smartsage::sim;

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s;
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Distribution, BasicMoments)
{
    Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.sum(), 10.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_NEAR(d.stddev(), 1.29099, 1e-4);
}

TEST(Distribution, PercentilesInterpolate)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(i);
    EXPECT_NEAR(d.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(d.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(d.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(d.percentile(99), 99.01, 0.1);
}

TEST(Distribution, PercentileAfterMoreSamplesResorts)
{
    Distribution d;
    d.sample(10);
    EXPECT_DOUBLE_EQ(d.percentile(50), 10.0);
    d.sample(0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 10.0);
    EXPECT_DOUBLE_EQ(d.percentile(0), 0.0);
}

TEST(Distribution, EmptyIsSafe)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(5);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.sum(), 0.0);
}

TEST(StatGroup, DumpContainsRegisteredStats)
{
    Scalar s;
    s += 7;
    Distribution d;
    d.sample(1);
    d.sample(3);

    StatGroup group("ssd");
    group.addScalar("reads", &s, "host reads");
    group.addDistribution("latency", &d, "read latency");

    std::ostringstream os;
    group.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("ssd.reads"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("ssd.latency::mean"), std::string::npos);
    EXPECT_NE(out.find("# host reads"), std::string::npos);
}

TEST(DistributionDeath, BadPercentilePanics)
{
    Distribution d;
    d.sample(1);
    EXPECT_DEATH(d.percentile(101), "out of range");
}

TEST(LatencyHistogram, SmallNPercentilesAreExact)
{
    // While every sample is retained the percentiles must match the
    // exact Distribution, interpolation rule included.
    LatencyHistogram h;
    Distribution d;
    for (int i = 1; i <= 100; ++i) {
        h.record(i * 3.7);
        d.sample(i * 3.7);
    }
    EXPECT_TRUE(h.exact());
    for (double p : {0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), d.percentile(p)) << p;
    EXPECT_DOUBLE_EQ(h.mean(), d.mean());
    EXPECT_DOUBLE_EQ(h.min(), d.min());
    EXPECT_DOUBLE_EQ(h.max(), d.max());
}

TEST(LatencyHistogram, LargeNPercentilesStayWithinBucketError)
{
    // Past the exact cap the log buckets bound the relative error by
    // 1/kSubBuckets per value.
    LatencyHistogram h;
    Distribution d;
    std::uint64_t state = 12345;
    for (int i = 0; i < 20000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        double v = 1.0 + static_cast<double>(state >> 40); // ~[1, 16M]
        h.record(v);
        d.sample(v);
    }
    EXPECT_FALSE(h.exact());
    const double tol = 1.0 / LatencyHistogram::kSubBuckets;
    for (double p : {50.0, 95.0, 99.0}) {
        double exact = d.percentile(p);
        EXPECT_NEAR(h.percentile(p), exact, exact * tol) << p;
    }
    EXPECT_DOUBLE_EQ(h.min(), d.min());
    EXPECT_DOUBLE_EQ(h.max(), d.max());
}

TEST(LatencyHistogram, PercentilesAreMonotone)
{
    LatencyHistogram h;
    for (int i = 0; i < 5000; ++i)
        h.record((i * 37) % 1000 + 0.5);
    double prev = -1.0;
    for (double p = 0; p <= 100.0; p += 5.0) {
        double v = h.percentile(p);
        EXPECT_GE(v, prev) << p;
        prev = v;
    }
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording)
{
    // Small + small staying under the cap: merge stays exact.
    LatencyHistogram a, b, combined;
    for (int i = 0; i < 100; ++i) {
        a.record(i);
        combined.record(i);
    }
    for (int i = 100; i < 200; ++i) {
        b.record(i);
        combined.record(i);
    }
    a.merge(b);
    EXPECT_TRUE(a.exact());
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
    for (double p : {10.0, 50.0, 99.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), combined.percentile(p)) << p;

    // Large merges drop to buckets but stay consistent.
    LatencyHistogram big_a, big_b, big_c;
    for (int i = 0; i < 2000; ++i) {
        double v = i * 11.0 + 1;
        (i % 2 ? big_a : big_b).record(v);
        big_c.record(v);
    }
    big_a.merge(big_b);
    EXPECT_EQ(big_a.count(), big_c.count());
    EXPECT_FALSE(big_a.exact());
    for (double p : {50.0, 99.0})
        EXPECT_DOUBLE_EQ(big_a.percentile(p), big_c.percentile(p)) << p;
}

TEST(LatencyHistogram, EmptyAndResetAreSafe)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);

    h.record(42.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(h.exact());
    h.record(7.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 7.0);
}

TEST(LatencyHistogram, ZeroAndSubOneValuesLandInTheFirstBucket)
{
    LatencyHistogram h;
    for (int i = 0; i < 1000; ++i)
        h.record(0.0);
    for (int i = 0; i < 1000; ++i)
        h.record(0.9);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.9);
    EXPECT_LE(h.percentile(50), 1.0); // first bucket is [0, 1)
}

TEST(LatencyHistogramDeath, NegativeSamplePanics)
{
    LatencyHistogram h;
    EXPECT_DEATH(h.record(-1.0), "non-negative");
}
