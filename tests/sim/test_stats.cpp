/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace smartsage::sim;

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s;
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Distribution, BasicMoments)
{
    Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.sum(), 10.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_NEAR(d.stddev(), 1.29099, 1e-4);
}

TEST(Distribution, PercentilesInterpolate)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(i);
    EXPECT_NEAR(d.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(d.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(d.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(d.percentile(99), 99.01, 0.1);
}

TEST(Distribution, PercentileAfterMoreSamplesResorts)
{
    Distribution d;
    d.sample(10);
    EXPECT_DOUBLE_EQ(d.percentile(50), 10.0);
    d.sample(0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 10.0);
    EXPECT_DOUBLE_EQ(d.percentile(0), 0.0);
}

TEST(Distribution, EmptyIsSafe)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(5);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.sum(), 0.0);
}

TEST(StatGroup, DumpContainsRegisteredStats)
{
    Scalar s;
    s += 7;
    Distribution d;
    d.sample(1);
    d.sample(3);

    StatGroup group("ssd");
    group.addScalar("reads", &s, "host reads");
    group.addDistribution("latency", &d, "read latency");

    std::ostringstream os;
    group.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("ssd.reads"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("ssd.latency::mean"), std::string::npos);
    EXPECT_NE(out.find("# host reads"), std::string::npos);
}

TEST(DistributionDeath, BadPercentilePanics)
{
    Distribution d;
    d.sample(1);
    EXPECT_DEATH(d.percentile(101), "out of range");
}
