/** @file Unit and property tests for the xoshiro256** RNG wrapper. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/random.hh"

using namespace smartsage::sim;

TEST(Random, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Random, BoundedStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Random, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Random, BernoulliExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Random, ForkedStreamsAreIndependent)
{
    Rng base(123);
    Rng s0 = base.fork(0);
    Rng s1 = base.fork(1);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (s0.next() == s1.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Random, ForkIsDeterministic)
{
    Rng base(123);
    Rng a = base.fork(5);
    Rng b = Rng(123).fork(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, SaveRestoreRoundTripsMidStream)
{
    Rng rng(0xfeedULL);
    for (int i = 0; i < 37; ++i)
        rng.next();

    const RngState state = rng.save();
    std::vector<std::uint64_t> expected;
    for (int i = 0; i < 50; ++i)
        expected.push_back(rng.next());

    Rng restored(1); // unrelated seed; restore overwrites everything
    restored.restore(state);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(restored.next(), expected[i]);

    // A restored generator forks the same child streams too.
    Rng a(0xfeedULL), b(1);
    b.restore(a.save());
    Rng fa = a.fork(9), fb = b.fork(9);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(fa.next(), fb.next());
}

TEST(Random, SavedStatesCompareByValue)
{
    Rng a(5), b(5), c(6);
    EXPECT_TRUE(a.save() == b.save());
    EXPECT_FALSE(a.save() == c.save());
    a.next();
    EXPECT_FALSE(a.save() == b.save());
}

/** Property sweep: bounded draws look uniform for several bounds. */
class RandomUniformity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomUniformity, RoughlyUniform)
{
    std::uint64_t bound = GetParam();
    Rng rng(bound * 31 + 1);
    std::vector<std::uint64_t> counts(bound, 0);
    const std::uint64_t draws = 20000;
    for (std::uint64_t i = 0; i < draws; ++i)
        ++counts[rng.nextBounded(bound)];
    double expect = static_cast<double>(draws) / bound;
    for (std::uint64_t c : counts) {
        EXPECT_GT(c, expect * 0.7);
        EXPECT_LT(c, expect * 1.3);
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RandomUniformity,
                         ::testing::Values(2, 3, 7, 16, 33));

TEST(Random, MeanOfDoublesNearHalf)
{
    Rng rng(77);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}
