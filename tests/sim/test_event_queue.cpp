/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace smartsage::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackCanScheduleMore)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleAfter(5, [&] { ++fired; });
    });
    Tick end = q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 6u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NowAdvancesWithEvents)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(42, [&] { seen = q.now(); });
    q.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, SameTickSchedulingIsAllowed)
{
    // The precondition is when >= now(): scheduling *at* the current
    // tick is legal (completions fire at eq.now() constantly).
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { q.schedule(10, [&] { ++fired; }); });
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ResetRewindsTheClockAndDropsEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.run();
    EXPECT_EQ(q.now(), 10u);

    q.schedule(50, [&] { ++fired; });
    q.reset();
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);

    // After reset, earlier-than-before ticks are schedulable again.
    q.schedule(3, [&] { ++fired; });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(fired, 2); // the dropped event never fired
}

TEST(EventQueueDeath, SchedulingInThePastIsFatal)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}),
                 "scheduling at tick 5, which is in the past \\(now = "
                 "10\\)");
}
