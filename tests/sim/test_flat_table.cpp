/** @file Tests for the epoch-stamped flat dedup table. */

#include <gtest/gtest.h>

#include "sim/flat_table.hh"

using smartsage::sim::FlatEpochTable;

TEST(FlatEpochTable, FreshTableIsEmptyWithoutClear)
{
    FlatEpochTable<std::uint32_t> t;
    t.reserve(32);
    // No clear() yet: every key must read as absent.
    for (std::uint64_t k = 0; k < 32; ++k)
        EXPECT_FALSE(t.contains(k));
    auto [v, inserted] = t.tryEmplace(4, 9);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(v, 9u);
}

TEST(FlatEpochTable, PutOverwrites)
{
    FlatEpochTable<std::uint32_t> t;
    t.reserve(8);
    t.put(3, 1);
    t.put(3, 2); // last wins
    EXPECT_EQ(t.at(3), 2u);
    auto [v, inserted] = t.tryEmplace(3, 5);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(v, 2u);
}

TEST(FlatEpochTable, InsertAndLookup)
{
    FlatEpochTable<std::uint32_t> t;
    t.reserve(64);
    t.clear();

    EXPECT_FALSE(t.contains(3));
    auto [v1, inserted1] = t.tryEmplace(3, 7);
    EXPECT_TRUE(inserted1);
    EXPECT_EQ(v1, 7u);
    EXPECT_TRUE(t.contains(3));
    EXPECT_EQ(t.at(3), 7u);

    // Second emplace keeps the first value.
    auto [v2, inserted2] = t.tryEmplace(3, 99);
    EXPECT_FALSE(inserted2);
    EXPECT_EQ(v2, 7u);
    EXPECT_EQ(t.at(3), 7u);
}

TEST(FlatEpochTable, ClearIsConstantTimeForget)
{
    FlatEpochTable<std::uint32_t> t;
    t.reserve(16);
    t.clear();
    for (std::uint64_t k = 0; k < 16; ++k)
        t.tryEmplace(k, static_cast<std::uint32_t>(k));
    for (std::uint64_t k = 0; k < 16; ++k)
        EXPECT_TRUE(t.contains(k));

    t.clear();
    for (std::uint64_t k = 0; k < 16; ++k)
        EXPECT_FALSE(t.contains(k));

    // Entries inserted after a clear are independent of stale slots.
    t.tryEmplace(5, 42);
    EXPECT_TRUE(t.contains(5));
    EXPECT_EQ(t.at(5), 42u);
    EXPECT_FALSE(t.contains(4));
}

TEST(FlatEpochTable, SetSemantics)
{
    FlatEpochTable<char> t;
    t.reserve(8);
    t.clear();
    EXPECT_TRUE(t.insert(2));
    EXPECT_FALSE(t.insert(2));
    EXPECT_TRUE(t.insert(7));
    t.clear();
    EXPECT_TRUE(t.insert(2));
}

TEST(FlatEpochTable, ReserveGrowsAndKeepsClearedState)
{
    FlatEpochTable<std::uint32_t> t;
    t.reserve(4);
    t.clear();
    t.tryEmplace(1, 10);
    t.reserve(1024); // grow; existing epoch state must survive
    EXPECT_TRUE(t.contains(1));
    EXPECT_FALSE(t.contains(1000));
    t.tryEmplace(1000, 3);
    EXPECT_EQ(t.at(1000), 3u);

    // Shrinking requests are no-ops.
    t.reserve(2);
    EXPECT_EQ(t.capacity(), 1024u);
    EXPECT_TRUE(t.contains(1000));
}

TEST(FlatEpochTable, ManyEpochsStayIsolated)
{
    FlatEpochTable<std::uint32_t> t;
    t.reserve(4);
    for (std::uint32_t round = 0; round < 10000; ++round) {
        t.clear();
        EXPECT_FALSE(t.contains(round % 4));
        t.tryEmplace(round % 4, round);
        EXPECT_EQ(t.at(round % 4), round);
    }
}
