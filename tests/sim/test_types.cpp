/** @file Unit tests for sim/types.hh unit helpers. */

#include <gtest/gtest.h>

#include "sim/types.hh"

using namespace smartsage::sim;

TEST(Types, UnitConstructorsScale)
{
    EXPECT_EQ(ns(1), 1u);
    EXPECT_EQ(us(1), 1000u);
    EXPECT_EQ(ms(1), 1000000u);
    EXPECT_EQ(sec(1), 1000000000u);
    EXPECT_EQ(us(2.5), 2500u);
}

TEST(Types, ConversionRoundTrip)
{
    EXPECT_DOUBLE_EQ(toSeconds(sec(3)), 3.0);
    EXPECT_DOUBLE_EQ(toMicros(us(42)), 42.0);
}

TEST(Types, ByteHelpers)
{
    EXPECT_EQ(KiB(4), 4096u);
    EXPECT_EQ(MiB(1), 1048576u);
    EXPECT_EQ(GiB(1), 1073741824u);
}

TEST(Types, TransferTimeBasic)
{
    // 1 GB at 1 GB/s = 1 second.
    EXPECT_EQ(transferTime(1000000000ull, 1.0), sec(1));
    // 4 KiB at 4.096 GB/s = 1 us.
    EXPECT_EQ(transferTime(4096, 4.096), us(1));
}

TEST(Types, TransferTimeZeroBytesIsFree)
{
    EXPECT_EQ(transferTime(0, 1.0), 0u);
}

TEST(Types, TransferTimeNeverRoundsToZeroForNonEmpty)
{
    EXPECT_GE(transferTime(1, 1000.0), 1u);
}

TEST(Types, TransferTimeMonotonicInBytes)
{
    Tick prev = 0;
    for (std::uint64_t b = 1; b <= 1u << 20; b *= 4) {
        Tick t = transferTime(b, 3.2);
        EXPECT_GE(t, prev);
        prev = t;
    }
}
